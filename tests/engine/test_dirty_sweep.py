"""Autotuner policy under a controlled dirty-fraction sweep.

Drives the bus-connected :class:`CrossRoundPlanExecutor` with nested
dirty sets covering 1% to 100% of a 100-advertiser population and pins
the :class:`~repro.engine.autotune.CacheAutotuner` contract:

- the bypass decision is *monotone* in the dirty fraction (nested dirty
  sets mean a higher fraction's windowed mean dominates a lower one's
  round for round);
- a calm market (1% dirty) never bypasses, a fully dirty one always
  does once warmed up;
- cached work never exceeds uncached work -- the only cost the bus adds
  is its own event traffic, which is measured and linear in the dirty
  declarations, not in plan size;
- answers are byte-identical to a fresh executor at every fraction,
  bypassed rounds included;
- LRU auto-sizing converges on the observed working set and moves only
  outside the hysteresis band.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.autotune import CacheAutotuner
from repro.engine.changefeed import BidChanged, ChangeFeed
from repro.engine.pipeline import SharedAuctionEngine
from repro.errors import InvalidAuctionError
from repro.instrument import MetricsCollector, names
from repro.plans.executor import CrossRoundPlanExecutor, PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.workloads.generator import MarketConfig, generate_market

POPULATION = 100
ROUNDS = 20
FRACTIONS = (0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00)


def sweep_instance():
    """Eight overlapping queries over the 100-advertiser population."""
    rng = random.Random(0)
    queries = []
    for index in range(8):
        members = rng.sample(range(POPULATION), 25)
        queries.append(AggregateQuery(f"q{index}", set(members), 1.0))
    return SharedAggregationInstance(queries)


def run_sweep_point(fraction, collector=None, autotune=True):
    """One sweep point: ROUNDS rounds at a fixed nested dirty fraction.

    The dirty set of round ``r`` is the first ``ceil(fraction * N)``
    advertisers of one fixed permutation, so a higher fraction's dirty
    set is a strict superset of a lower one's in every round -- the
    nesting that makes the monotonicity assertion meaningful.

    Returns:
        ``(autotuner, feed, cached_collector, uncached_collector)``.
    """
    instance = sweep_instance()
    plan = greedy_shared_plan(instance, pair_strategy="cover")
    order = list(range(POPULATION))
    random.Random(1).shuffle(order)
    dirty_count = max(1, int(round(fraction * POPULATION)))

    feed = ChangeFeed()
    # warmup=3 so the unavoidable all-dirty first round (first sight of
    # every score) cannot tip a calm market into bypassing on its own.
    autotuner = (
        CacheAutotuner(warmup=3, collector=collector or MetricsCollector())
        if autotune
        else None
    )
    cached_collector = collector or MetricsCollector()
    uncached_collector = MetricsCollector()
    cached = CrossRoundPlanExecutor(
        plan, 3, cached_collector, autotuner=autotuner
    )
    cached.connect(feed)
    uncached = PlanExecutor(plan, 3, uncached_collector)

    scores = {v: float((v * 37) % 53 + 1) for v in range(POPULATION)}
    for round_index in range(ROUNDS):
        if round_index:
            for v in order[:dirty_count]:
                scores[v] = scores[v] + 1.0 + (v % 5)
                feed.publish(BidChanged(v))
        a = cached.run_round(dict(scores))
        b = uncached.run_round(dict(scores))
        assert a.answers == b.answers, (
            f"divergence at fraction {fraction} round {round_index}"
        )
    return autotuner, feed, cached_collector, uncached_collector


class TestDirtyFractionSweep:
    @pytest.mark.parametrize("fraction", FRACTIONS)
    def test_cached_work_never_exceeds_uncached(self, fraction):
        autotuner, feed, cached, uncached = run_sweep_point(fraction)
        assert cached.counter(names.PLAN_NODES) <= uncached.counter(
            names.PLAN_NODES
        )
        assert cached.counter(names.PLAN_MERGES) <= uncached.counter(
            names.PLAN_MERGES
        )
        # The bus's entire overhead is its event traffic: one event per
        # declared-dirty advertiser per round, independent of plan size.
        dirty_count = max(1, int(round(fraction * POPULATION)))
        assert feed.events_published == dirty_count * (ROUNDS - 1)
        assert feed.events_consumed == feed.events_published
        # The windowed estimate tracks the true fraction.
        assert autotuner.dirty_fraction <= 1.0
        assert autotuner.rounds_observed == ROUNDS

    def test_bypass_decision_is_monotone_in_dirty_fraction(self):
        bypasses = []
        for fraction in FRACTIONS:
            autotuner, _, _, _ = run_sweep_point(fraction)
            bypasses.append(autotuner.bypass_rounds)
        assert bypasses == sorted(bypasses), (
            f"bypass counts not monotone over {FRACTIONS}: {bypasses}"
        )
        assert bypasses[0] == 0, "a 1%-dirty market must never bypass"
        assert bypasses[-1] > 0, "a fully dirty market must bypass"
        # At 100% dirty every post-warmup round bypasses.
        assert bypasses[-1] == ROUNDS - CacheAutotuner(warmup=3).warmup

    def test_bypass_rounds_reach_collector_and_result_flag(self):
        collector = MetricsCollector()
        autotuner, _, cached, _ = run_sweep_point(1.0, collector=collector)
        assert autotuner.bypass_rounds > 0
        assert (
            collector.counter(names.CACHE_BYPASS_ROUNDS)
            == autotuner.bypass_rounds
        )

    def test_autotune_resizes_cache_to_working_set(self):
        collector = MetricsCollector()
        autotuner, _, _, _ = run_sweep_point(0.05, collector=collector)
        # A full window of observations produces a recommendation and the
        # unbounded default gets a concrete LRU bound.
        assert autotuner.resizes >= 1
        assert (
            collector.counter(names.CACHE_AUTOTUNE_RESIZES)
            == autotuner.resizes
        )
        recommended = autotuner.recommended_capacity()
        assert recommended is not None
        assert recommended >= max(autotuner._working_sets)


class TestCacheAutotunerUnit:
    def test_parameter_validation(self):
        for kwargs in (
            {"bypass_threshold": 0.0},
            {"window": 0},
            {"warmup": 0},
            {"slack": 0.5},
            {"hysteresis": -0.1},
        ):
            with pytest.raises(InvalidAuctionError):
                CacheAutotuner(**kwargs)

    def test_no_bypass_before_warmup(self):
        tuner = CacheAutotuner(bypass_threshold=0.5, warmup=3)
        tuner.observe_round(10, 10, 5)
        tuner.observe_round(10, 10, 5)
        assert not tuner.should_bypass()
        tuner.observe_round(10, 10, 5)
        assert tuner.should_bypass()

    def test_windowed_mean_forgets_old_rounds(self):
        tuner = CacheAutotuner(bypass_threshold=0.5, window=4, warmup=2)
        for _ in range(4):
            tuner.observe_round(10, 10, 5)
        assert tuner.should_bypass()
        for _ in range(4):
            tuner.observe_round(0, 10, 5)
        assert tuner.dirty_fraction == 0.0
        assert not tuner.should_bypass()

    def test_empty_population_counts_as_clean(self):
        tuner = CacheAutotuner()
        tuner.observe_round(0, 0, 0)
        assert tuner.dirty_fraction == 0.0

    def test_recommendation_requires_full_window(self):
        tuner = CacheAutotuner(window=3, slack=2.0)
        tuner.observe_round(1, 10, 7)
        tuner.observe_round(1, 10, 9)
        assert tuner.recommended_capacity() is None
        tuner.observe_round(1, 10, 8)
        assert tuner.recommended_capacity() == 18  # high-water 9 x slack 2

    def test_hysteresis_suppresses_small_moves(self):
        class FakeCache:
            capacity = 20

            def __init__(self):
                self.resized_to = None

            def resize(self, capacity):
                self.capacity = capacity
                self.resized_to = capacity

        tuner = CacheAutotuner(window=2, slack=2.0, hysteresis=0.25)
        cache = FakeCache()
        tuner.observe_round(1, 10, 11)
        tuner.observe_round(1, 10, 11)
        # Recommendation 22 is within 25% of the current 20: no move.
        assert tuner.maybe_resize(cache) is None
        assert cache.resized_to is None
        tuner.observe_round(1, 10, 20)
        # High-water 20 x 2 = 40 clears the band and is applied.
        assert tuner.maybe_resize(cache) == 40
        assert cache.capacity == 40
        assert tuner.resizes == 1


def _small_market(seed):
    return generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=3,
            specialists_per_category=5,
            generalists=3,
            generalist_categories=2,
            median_budget_cents=2_000,
            seed=seed,
        )
    )


class TestEngineAutotuneDifferential:
    """``cache_autotune`` changes work, never outcomes -- both modes."""

    def _paired(self, mode, seed, rounds=10, **tuned_kwargs):
        market = _small_market(seed)

        def build(**kwargs):
            return SharedAuctionEngine(
                market.advertisers,
                slot_factors=[0.3, 0.2, 0.1],
                search_rates=market.search_rates,
                mode=mode,
                seed=seed,
                **kwargs,
            )

        tuned = build(cache_autotune=True, **tuned_kwargs)
        plain = build()
        for round_index in range(rounds):
            occurring = tuned.sample_occurring_phrases()
            plain._rng.setstate(tuned._rng.getstate())
            report_a = tuned.run_round(occurring)
            report_b = plain.run_round(occurring)
            assert report_a.allocations == report_b.allocations, (
                f"autotuned {mode} diverged in round {round_index}"
            )
            assert report_a.revenue_cents == report_b.revenue_cents
            tuned._rng.setstate(plain._rng.getstate())
        return tuned

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_exec_cache_autotune_matches_uncached(self, seed):
        tuned = self._paired("shared", seed, exec_cache=True)
        assert tuned.autotuner is not None
        assert tuned.autotuner.rounds_observed == 10

    @pytest.mark.parametrize("seed", [0, 21])
    def test_sort_cache_autotune_matches_uncached(self, seed):
        tuned = self._paired("shared-sort", seed, sort_cache=True)
        assert tuned.autotuner is not None

    def test_autotune_without_a_cache_rejected(self):
        market = _small_market(0)
        with pytest.raises(InvalidAuctionError, match="cache_autotune"):
            SharedAuctionEngine(
                market.advertisers,
                slot_factors=[0.3, 0.2, 0.1],
                search_rates=market.search_rates,
                cache_autotune=True,
            )

    def test_bus_counters_surface_in_engine_report(self):
        market = _small_market(3)
        collector = MetricsCollector()
        engine = SharedAuctionEngine(
            market.advertisers,
            slot_factors=[0.3, 0.2, 0.1],
            search_rates=market.search_rates,
            mode="shared",
            exec_cache=True,
            seed=3,
            collector=collector,
        )
        report = engine.run(6)
        assert report.counters[names.BUS_EVENTS_PUBLISHED] > 0
        assert report.counters[names.BUS_EVENTS_CONSUMED] > 0
        # The lifetime collector count matches the feed exactly; the
        # round-delta rollup may trail it because the end-of-run click
        # flush publishes between rounds, outside any RoundReport.
        assert engine.changefeed.events_published == collector.counter(
            names.BUS_EVENTS_PUBLISHED
        )
        assert (
            report.counters[names.BUS_EVENTS_PUBLISHED]
            <= engine.changefeed.events_published
        )

    def test_uncached_engine_publishes_nothing(self):
        market = _small_market(3)
        engine = SharedAuctionEngine(
            market.advertisers,
            slot_factors=[0.3, 0.2, 0.1],
            search_rates=market.search_rates,
            mode="shared",
            seed=3,
        )
        engine.run(4)
        assert not engine.changefeed.active
        assert engine.changefeed.events_published == 0
