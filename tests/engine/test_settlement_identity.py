"""Regression tests for outstanding-ad settlement identity.

The old ``BudgetManager.settle_click`` matched the clicked ad against
the ledger by ``(price_cents, displayed_round)`` alone.  When an
advertiser wins two same-price slots in one round with *different* CTRs
(different slot factors do exactly that), the first value-match was
cleared regardless of which ad was actually clicked -- leaving the wrong
CTR in the ledger and skewing every later throttled bid built from it.
``record_display`` now returns an identity handle, and settlement with
the handle resolves exactly the clicked ad in O(1).
"""

from __future__ import annotations

import pytest

from repro.budgets.outstanding import OutstandingLedger
from repro.engine.budget_manager import BudgetManager
from repro.errors import BudgetError


class TestLedgerHandles:
    def test_record_display_assigns_distinct_handles(self):
        ledger = OutstandingLedger()
        first = ledger.record_display(100, 0.9, 0)
        second = ledger.record_display(100, 0.1, 0)
        assert first.handle != second.handle
        assert ledger.has_handle(first.handle)
        assert ledger.has_handle(second.handle)

    def test_resolve_handle_pops_exactly_that_ad(self):
        ledger = OutstandingLedger()
        high = ledger.record_display(100, 0.9, 0)
        low = ledger.record_display(100, 0.1, 0)
        resolved = ledger.resolve_handle(low.handle)
        assert resolved.base_ctr == pytest.approx(0.1)
        assert not ledger.has_handle(low.handle)
        assert ledger.has_handle(high.handle)
        assert [ad.base_ctr for ad in ledger.ads] == [pytest.approx(0.9)]

    def test_resolve_handle_missing_raises(self):
        ledger = OutstandingLedger()
        with pytest.raises(BudgetError):
            ledger.resolve_handle(7)

    def test_value_equal_ads_stay_distinct(self):
        # Two displays with identical (price, ctr, round) are equal as
        # values but distinct as debts; resolving one must leave the
        # other outstanding.
        ledger = OutstandingLedger()
        a = ledger.record_display(50, 0.5, 3)
        b = ledger.record_display(50, 0.5, 3)
        ledger.resolve_handle(a.handle)
        assert len(ledger) == 1
        assert ledger.has_handle(b.handle)


class TestSettlementIdentity:
    def _manager_with_two_same_price_ads(self):
        """One advertiser, two same-price same-round ads, CTRs 0.9/0.1.

        The budget is tight enough (2.5 clicks) that the surviving debt
        genuinely throttles the next bid -- a loose budget would let the
        trivially-unthrottled shortcut mask which ad was left behind.
        """
        manager = BudgetManager({1: 250})
        high = manager.record_display(1, 100, 0.9, 0)
        low = manager.record_display(1, 100, 0.1, 0)
        return manager, high, low

    def _remaining_ctrs(self, manager):
        problem = manager.throttle_problem(1, 100, 1, 0)
        return sorted(ctr for _, ctr in problem.outstanding)

    def test_handle_settles_the_clicked_ad(self):
        # The click is for the *low*-CTR ad.  The correct post-settle
        # ledger holds the 0.9 ad -- and the throttle problem built from
        # it sees the 0.9 debt.
        manager, high, low = self._manager_with_two_same_price_ads()
        manager.settle_click(1, 100, 0, handle=low)
        assert self._remaining_ctrs(manager) == [pytest.approx(0.9)]

    def test_legacy_matching_settles_the_wrong_ad(self):
        # The bug this PR fixes, pinned: without a handle, the first
        # (price, round) match -- the high-CTR ad -- is cleared even
        # though the click belonged to the low-CTR ad, so the ledger
        # keeps the wrong debt.
        manager, high, low = self._manager_with_two_same_price_ads()
        manager.settle_click(1, 100, 0)
        assert self._remaining_ctrs(manager) == [pytest.approx(0.1)]

    def test_wrong_ad_resolution_skews_the_throttled_bid(self):
        # End-to-end consequence: after clicking the low-CTR ad, the
        # handle path and the legacy path disagree on b-hat because they
        # left different debts behind.
        from repro.budgets.throttle import exact_throttled_bid

        with_handle, _, low = self._manager_with_two_same_price_ads()
        with_handle.settle_click(1, 100, 0, handle=low)
        legacy, _, _ = self._manager_with_two_same_price_ads()
        legacy.settle_click(1, 100, 0)
        bid_handle = exact_throttled_bid(
            with_handle.throttle_problem(1, 100, 1, 0)
        )
        bid_legacy = exact_throttled_bid(legacy.throttle_problem(1, 100, 1, 0))
        assert bid_handle != bid_legacy
        # The 0.9 debt throttles harder than the 0.1 debt.
        assert bid_handle < bid_legacy

    def test_expired_handle_still_settles_the_charge(self):
        # A click arriving after its ad aged out of the ledger must
        # still charge the budget; the stale handle is simply ignored.
        manager = BudgetManager({1: 1_000})
        handle = manager.record_display(1, 100, 0.5, 0)
        manager.expire_outstanding(10_000_000)
        charge = manager.settle_click(1, 100, 0, handle=handle)
        assert charge.charged_cents == 100
        assert manager.spent_cents(1) == 100

    def test_unrecorded_display_settles_with_sentinel_handle(self):
        # Engine paths that never recorded a ledger entry settle with
        # handle -1, which can never collide with a real handle.
        manager = BudgetManager({1: 1_000})
        manager.record_display(1, 100, 0.5, 0)
        charge = manager.settle_click(1, 100, 0, handle=-1)
        assert charge.charged_cents == 100
        # The recorded ad is untouched.
        assert len(manager.throttle_problem(1, 100, 1, 0).outstanding) == 1
