"""Stateful lockdown of the bus-driven cache stack.

One :class:`~repro.engine.changefeed.ChangeFeed` wires together every
consumer at once -- a :class:`CrossRoundPlanExecutor` (pull), a
:class:`CrossRoundSortCache` (pull), and a :class:`PlanMaintainer`
(push, which rebinds both caches transitively) -- and Hypothesis
interleaves bid changes, budget moves, advertiser churn, and executed
rounds in arbitrary orders.  After every step, the bus-driven state
must be *byte-identical* to a from-scratch rebuild:

- every plan-query answer equals an independent ``top_k_scan`` over
  the live interests and current scores;
- every phrase's shared-sort stream drains to exactly the items a
  fresh instantiation of the same plan produces.

Both caches run with ``verify=True``, so the machine also proves event
coverage: any value the rules move without publishing a covering event
would raise ``InvalidPlanError`` inside the round.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.topk import top_k_scan
from repro.engine.changefeed import (
    AdvertiserAdded,
    AdvertiserRemoved,
    BidChanged,
    BudgetChanged,
    ChangeFeed,
)
from repro.plans.executor import CrossRoundPlanExecutor
from repro.plans.maintenance import PlanMaintainer
from repro.sharedsort.cache import CrossRoundSortCache
from repro.sharedsort.plan import build_shared_sort_plan


def drain(stream):
    items = []
    index = 0
    while (item := stream.item(index)) is not None:
        items.append(item)
        index += 1
    return items


class ChangeFeedMachine(RuleBasedStateMachine):
    """Random event traffic against every bus consumer at once."""

    K = 2
    CORE_PHRASES = ("p", "q", "r")
    CORE = tuple(range(6))       # permanent advertisers
    EXTRAS = tuple(range(6, 10))  # may enter and leave via churn events
    # Fixed per-advertiser CTR factors keep score != bid, so the two
    # caches genuinely diff different value domains.
    CTR = {a: 0.5 + 0.05 * a for a in range(10)}

    @initialize()
    def setup(self) -> None:
        self.feed = ChangeFeed()
        self.maintainer = PlanMaintainer(
            {"p": {0, 1, 2}, "q": {2, 3, 4}, "r": {4, 5, 0}},
            replan_after=4,
        )
        self.executor = CrossRoundPlanExecutor(
            self.maintainer.plan, self.K, verify=True
        )
        self.executor.connect(self.feed)
        self.maintainer.subscribe(self.executor.rebind)
        self.maintainer.connect(self.feed)
        self.sort_cache = CrossRoundSortCache(
            self._sort_plan(), verify=True
        )
        self.sort_cache.connect(self.feed)
        # Structural churn rebuilds the sort plan from the maintained
        # interests and rebinds the cache -- what a serving loop does.
        self.maintainer.subscribe(
            lambda plan: self.sort_cache.rebind(self._sort_plan())
        )
        self.bids = {a: float(a * 13 % 7 + 1) for a in self.CORE}

    def _sort_plan(self):
        return build_shared_sort_plan(
            {
                phrase: sorted(ids)
                for phrase, ids in sorted(self.maintainer.interests().items())
            },
            1.0,
        )

    def _present(self) -> set:
        return {
            a for ids in self.maintainer.interests().values() for a in ids
        }

    def _scores(self) -> dict:
        return {a: bid * self.CTR[a] for a, bid in self.bids.items()}

    # ------------------------------------------------------------------
    # rules: every value move publishes its covering event
    # ------------------------------------------------------------------
    @rule(
        advertiser=st.sampled_from(CORE + EXTRAS),
        bid=st.integers(min_value=1, max_value=30),
    )
    def change_bid(self, advertiser: int, bid: int) -> None:
        if advertiser not in self.bids:
            return
        self.bids[advertiser] = float(bid)
        self.feed.publish(BidChanged(advertiser))

    @rule(advertiser=st.sampled_from(CORE + EXTRAS))
    def budget_move(self, advertiser: int) -> None:
        # A budget event shaves the effective bid, like a click settling
        # against a thinning budget would.
        if advertiser not in self.bids:
            return
        self.bids[advertiser] = round(self.bids[advertiser] * 0.75 + 0.25, 4)
        self.feed.publish(BudgetChanged(advertiser))

    @rule(
        advertiser=st.sampled_from(EXTRAS),
        phrases=st.sets(st.sampled_from(CORE_PHRASES), min_size=1, max_size=2),
        bid=st.integers(min_value=1, max_value=30),
    )
    def advertiser_enters(self, advertiser: int, phrases: set, bid: int) -> None:
        if advertiser in self._present():
            return
        self.bids[advertiser] = float(bid)
        self.feed.publish(AdvertiserAdded(advertiser, frozenset(phrases)))

    @rule(advertiser=st.sampled_from(EXTRAS))
    def advertiser_leaves(self, advertiser: int) -> None:
        if advertiser not in self._present():
            return
        self.feed.publish(AdvertiserRemoved(advertiser))
        del self.bids[advertiser]

    @rule()
    def run_round(self) -> None:
        self._run_and_check()

    # ------------------------------------------------------------------
    # the lockdown: bus-driven state == from-scratch rebuild, every step
    # ------------------------------------------------------------------
    @invariant()
    def caches_match_fresh_rebuild(self) -> None:
        self._run_and_check()

    def _run_and_check(self) -> None:
        scores = self._scores()
        result = self.executor.run_round(dict(scores))
        for query in self.executor.plan.instance.queries:
            expected = top_k_scan(
                self.K,
                [(scores[v], v) for v in sorted(query.variables)],
            )
            assert result.answers[query.name] == expected, (
                f"bus-driven answer diverged from fresh scan for "
                f"{query.name!r}"
            )
        assert (
            result.merges_performed + result.nodes_revalidated
            == result.nodes_materialized
        )

        live = self.sort_cache.instantiate(dict(self.bids))
        fresh = self.sort_cache.plan.instantiate(dict(self.bids))
        for phrase in sorted(self.maintainer.interests()):
            assert drain(live.stream_for_phrase(phrase)) == drain(
                fresh.stream_for_phrase(phrase)
            ), f"bus-driven sort stream diverged for {phrase!r}"


ChangeFeedMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestChangeFeedMachine = ChangeFeedMachine.TestCase
