"""Tests for the engine's Section III mode (shared sort + TA)."""

from __future__ import annotations

import pytest

from repro.core.advertiser import Advertiser
from repro.engine.pipeline import SharedAuctionEngine


def population(per_phrase_factors: bool):
    phrases = ("books", "dvds", "music")
    advertisers = []
    for i in range(15):
        mine = tuple(p for j, p in enumerate(phrases) if (i + j) % 2 == 0) or (
            "books",
        )
        overrides = {}
        if per_phrase_factors:
            overrides = {p: 0.5 + ((i * 7 + len(p)) % 10) / 10 for p in mine}
        advertisers.append(
            Advertiser(
                i,
                bid=0.5 + (i * 13 % 17) / 10,
                ctr_factor=0.8 + (i % 5) / 10,
                phrases=frozenset(mine),
                phrase_ctr_factors=overrides,
            )
        )
    return advertisers, phrases


def build(mode, per_phrase_factors=True, seed=5):
    advertisers, phrases = population(per_phrase_factors)
    return SharedAuctionEngine(
        advertisers,
        slot_factors=[0.3, 0.2],
        search_rates={p: 0.8 for p in phrases},
        mode=mode,
        throttle=False,
        seed=seed,
    )


class TestSharedSortMode:
    def test_runs_and_counts_work(self):
        engine = build("shared-sort")
        report = engine.run(20)
        assert report.displays > 0
        assert report.scans > 0
        assert report.merges > 0

    def test_matches_unshared_when_factors_are_global(self):
        """With phrase-independent factors all three modes agree on every
        outcome (the exactness guarantee extends to Section III)."""
        reports = {}
        for mode in ("shared", "unshared", "shared-sort"):
            engine = build(mode, per_phrase_factors=False, seed=7)
            reports[mode] = engine.run(30)
        assert (
            reports["shared"].revenue_cents
            == reports["unshared"].revenue_cents
            == reports["shared-sort"].revenue_cents
        )
        assert (
            reports["shared"].displays
            == reports["unshared"].displays
            == reports["shared-sort"].displays
        )

    def test_per_phrase_factors_change_rankings(self):
        """The point of Section III: per-phrase factors can reorder
        winners, so shared-sort mode and plain shared mode (which ignores
        the overrides) may genuinely differ."""
        with_overrides = build("shared-sort", per_phrase_factors=True, seed=3)
        without = build("shared-sort", per_phrase_factors=False, seed=3)
        report_a = with_overrides.run(25)
        report_b = without.run(25)
        # Identical query/click randomness, different scoring: revenue
        # differs (overwhelmingly likely given the factor spread).
        assert report_a.revenue_cents != report_b.revenue_cents

    def test_rankings_use_per_phrase_scores(self):
        advertisers = [
            Advertiser(
                0,
                bid=1.0,
                ctr_factor=1.0,
                phrases=frozenset({"p"}),
                phrase_ctr_factors={"p": 2.0},
            ),
            Advertiser(
                1,
                bid=1.5,
                ctr_factor=1.0,
                phrases=frozenset({"p"}),
                phrase_ctr_factors={"p": 1.0},
            ),
        ]
        engine = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.4],
            search_rates={"p": 1.0},
            mode="shared-sort",
            throttle=False,
            mean_click_delay_rounds=0.0,
            seed=1,
        )
        engine.run_round(["p"])
        # Advertiser 0 scores 1.0 * 2.0 = 2.0 > 1.5: it must have won and
        # been displayed (spend recorded as outstanding).
        counts = engine.budget_manager.outstanding_counts()
        assert list(counts) == [0]

    def test_deterministic(self):
        a = build("shared-sort", seed=11).run(15)
        b = build("shared-sort", seed=11).run(15)
        assert a.revenue_cents == b.revenue_cents
        assert a.scans == b.scans


def build_full(seed=5, **kwargs):
    advertisers, phrases = population(per_phrase_factors=True)
    return SharedAuctionEngine(
        advertisers,
        slot_factors=[0.3, 0.2],
        search_rates={p: 0.8 for p in phrases},
        mode="shared-sort",
        throttle=True,
        seed=seed,
        **kwargs,
    )


class TestSortRebuildOptions:
    """The PR's knobs: sort_planner and sort_cache (see ISSUE 5)."""

    def test_sort_cache_requires_shared_sort_mode(self):
        from repro.errors import InvalidAuctionError

        advertisers, phrases = population(per_phrase_factors=False)
        with pytest.raises(InvalidAuctionError):
            SharedAuctionEngine(
                advertisers,
                slot_factors=[0.3],
                search_rates={p: 0.8 for p in phrases},
                mode="shared",
                sort_cache=True,
            )

    def test_sort_planner_does_not_change_outcomes(self):
        lazy = build_full(seed=9, sort_planner="lazy").run(25)
        naive = build_full(seed=9, sort_planner="naive").run(25)
        assert lazy.revenue_cents == naive.revenue_cents
        assert lazy.scans == naive.scans
        assert lazy.merges == naive.merges
        assert [r.allocations for r in lazy.history] == [
            r.allocations for r in naive.history
        ]

    def test_sort_cache_is_outcome_invisible(self):
        plain = build_full(seed=13).run(40)
        cached = build_full(seed=13, sort_cache=True).run(40)
        assert plain.revenue_cents == cached.revenue_cents
        assert plain.forgiven_cents == cached.forgiven_cents
        assert plain.displays == cached.displays
        assert plain.scans == cached.scans
        assert [r.allocations for r in plain.history] == [
            r.allocations for r in cached.history
        ]
        # ... and work-visible: reused streams replay instead of pulling.
        assert cached.merges < plain.merges

    def test_sort_cache_with_collector_counts_reuse(self):
        from repro.instrument import MetricsCollector, names as metric_names

        collector = MetricsCollector()
        engine = build_full(seed=2, sort_cache=True, collector=collector)
        engine.run(30)
        assert collector.counter(metric_names.SORT_STREAMS_REUSED) > 0
