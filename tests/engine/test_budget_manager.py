"""Tests for the budget manager."""

from __future__ import annotations

import pytest

from repro.budgets.outstanding import GeometricDecay
from repro.engine.budget_manager import BudgetManager
from repro.errors import BudgetError


class TestBudgets:
    def test_negative_budget_rejected(self):
        with pytest.raises(BudgetError):
            BudgetManager({1: -5})

    def test_remaining_decreases_with_settlement(self):
        manager = BudgetManager({1: 100})
        assert manager.remaining_cents(1) == 100
        result = manager.settle_click(1, 40, display_round=0)
        assert result.charged_cents == 40
        assert result.forgiven_cents == 0
        assert manager.remaining_cents(1) == 60
        assert manager.spent_cents(1) == 40

    def test_forgiveness_beyond_budget(self):
        manager = BudgetManager({1: 30})
        result = manager.settle_click(1, 50, display_round=0)
        assert result.charged_cents == 30
        assert result.forgiven_cents == 20
        assert manager.remaining_cents(1) == 0

    def test_unbudgeted_advertiser_is_effectively_infinite(self):
        manager = BudgetManager({})
        assert manager.remaining_cents(7) == BudgetManager.UNBUDGETED_CENTS
        result = manager.settle_click(7, 1_000, display_round=0)
        assert result.forgiven_cents == 0


class TestOutstanding:
    def test_display_then_settle_clears_ledger(self):
        manager = BudgetManager({1: 100})
        manager.record_display(1, 40, 0.5, round_index=3)
        assert manager.outstanding_counts() == {1: 1}
        manager.settle_click(1, 40, display_round=3)
        assert manager.outstanding_counts() == {}

    def test_expire_outstanding_uses_decay(self):
        manager = BudgetManager({1: 100}, GeometricDecay(ratio=0.5, horizon=2))
        manager.record_display(1, 40, 0.5, round_index=0)
        assert manager.expire_outstanding(1) == 0
        assert manager.expire_outstanding(2) == 1
        assert manager.outstanding_counts() == {}

    def test_throttle_problem_construction(self):
        manager = BudgetManager({1: 100})
        manager.record_display(1, 30, 0.4, round_index=0)
        problem = manager.throttle_problem(
            1, bid_cents=60, num_auctions=2, round_index=0
        )
        assert problem.bid_cents == 60
        assert problem.budget_cents == 100
        assert problem.num_auctions == 2
        assert problem.outstanding == ((30, 0.4),)

    def test_throttle_problem_caps_bid_at_remaining(self):
        manager = BudgetManager({1: 25})
        problem = manager.throttle_problem(
            1, bid_cents=60, num_auctions=1, round_index=0
        )
        assert problem.bid_cents == 25

    def test_settle_matches_ledger_entry_by_round_and_price(self):
        manager = BudgetManager({1: 1000})
        manager.record_display(1, 40, 0.5, round_index=2)
        manager.record_display(1, 40, 0.5, round_index=3)
        manager.settle_click(1, 40, display_round=3)
        assert manager.outstanding_counts() == {1: 1}
