"""Layout differential: columnar kernels vs the object oracle.

``layout="columnar"`` swaps the engine's three hottest kernels --
effective scoring, per-phrase top-k, and TA sorted access -- for
vectorized numpy implementations.  The implementation promise is *byte
identity*, not approximate agreement: the same winners, the same GSP
prices, the same budget trajectories, round for round, under every mode
and cache combination.  The object layout is the oracle; these tests run
both layouts in lockstep on randomized markets across 50 seeds.

The cross-round caches are columnar-native under this layout: the exec
cache keeps fragment top-k lists alive behind a row-granular dirty mask,
and the sort cache incrementally repairs the shared presorted order.
Both cached configurations run the full lockstep sweep with
``verify=True`` (any event-uncovered staleness raises), the serving
loop's per-query trace is compared across layouts, and a hypothesis
property pins the columnar dirty mask to the object executor's dirty
cone leaf for leaf.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advertiser import Advertiser
from repro.core.columnar import ColumnarStore
from repro.engine.pipeline import SharedAuctionEngine
from repro.errors import InvalidAuctionError
from repro.instrument import MetricsCollector, names
from repro.plans.columnar_exec import ColumnarFragmentExecutor
from repro.plans.executor import CrossRoundPlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.serving import ServingEngine, TrafficGenerator
from repro.workloads.generator import MarketConfig, generate_market

DIFFERENTIAL_SEEDS = range(50)

# Every engine configuration the columnar layout supports, exercised
# with the caches both off and on and with the caches' exact soundness
# cross-check enabled (cache_verify=True is the constructor default).
CONFIGS = {
    "unshared": dict(mode="unshared", throttle=False),
    "unshared+throttle": dict(mode="unshared", throttle=True),
    "shared": dict(mode="shared"),
    "shared+caches": dict(
        mode="shared", exec_cache=True, throttle_cache=True,
        cache_verify=True,
    ),
    "shared-sort": dict(mode="shared-sort"),
    "shared-sort+cache": dict(
        mode="shared-sort", sort_cache=True, cache_verify=True
    ),
}


def _small_market(seed: int):
    return generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=3,
            specialists_per_category=5,
            generalists=3,
            generalist_categories=2,
            median_budget_cents=2_000,
            seed=seed,
        )
    )


def _with_overrides(advertisers, seed: int):
    """Give a third of the population per-phrase CTR overrides.

    The shared-sort TA kernel walks per-phrase CTR-ranked lists, so the
    ``c_i^q`` override path (Section III) needs its own coverage: the
    phrase-independent rank order and the per-phrase order genuinely
    differ on these markets.
    """
    rng = random.Random(f"overrides-{seed}")
    result = []
    for advertiser in advertisers:
        if rng.random() < 1 / 3 and advertiser.phrases:
            overrides = {
                phrase: round(rng.uniform(0.3, 1.8), 3)
                for phrase in sorted(advertiser.phrases)
                if rng.random() < 0.5
            }
            advertiser = Advertiser(
                advertiser.advertiser_id,
                bid=advertiser.bid,
                ctr_factor=advertiser.ctr_factor,
                daily_budget=advertiser.daily_budget,
                phrases=advertiser.phrases,
                phrase_ctr_factors=overrides,
            )
        result.append(advertiser)
    return result


def _build(advertisers, search_rates, layout, seed, collector=None, **kw):
    return SharedAuctionEngine(
        advertisers,
        slot_factors=[0.3, 0.2, 0.1],
        search_rates=search_rates,
        layout=layout,
        seed=seed,
        collector=collector,
        **kw,
    )


def _run_lockstep(advertisers, search_rates, seed, rounds=8, **kw):
    """Drive object and columnar engines round-for-round in lockstep.

    The object engine samples the occurring phrases; both engines then
    run the identical set with synchronized RNG states, and every
    outcome surface -- allocations (winners *and* prices), revenue,
    forgiven value, displays, clicks, and each advertiser's remaining
    budget -- must match exactly.
    """
    collector_object = MetricsCollector()
    collector_columnar = MetricsCollector()
    engine_object = _build(
        advertisers, search_rates, "object", seed, collector_object, **kw
    )
    engine_columnar = _build(
        advertisers, search_rates, "columnar", seed, collector_columnar,
        **kw,
    )
    for round_index in range(rounds):
        occurring = engine_object.sample_occurring_phrases()
        engine_columnar._rng.setstate(engine_object._rng.getstate())
        report_object = engine_object.run_round(occurring)
        report_columnar = engine_columnar.run_round(occurring)
        assert report_object.allocations == report_columnar.allocations, (
            f"layouts diverged in round {round_index} (seed {seed})"
        )
        assert report_object.revenue_cents == report_columnar.revenue_cents
        assert (
            report_object.forgiven_cents == report_columnar.forgiven_cents
        )
        assert report_object.displays == report_columnar.displays
        assert report_object.clicks == report_columnar.clicks
        for advertiser in advertisers:
            assert engine_object.budget_manager.remaining_cents(
                advertiser.advertiser_id
            ) == engine_columnar.budget_manager.remaining_cents(
                advertiser.advertiser_id
            ), f"budget trajectory diverged in round {round_index}"
        engine_object._rng.setstate(engine_columnar._rng.getstate())
    assert (
        engine_object.budget_manager.spent_snapshot()
        == engine_columnar.budget_manager.spent_snapshot()
    )
    return collector_object, collector_columnar


class TestColumnarMatchesObject:
    """The full 50-seed sweep on the cheap configurations."""

    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_unshared_with_throttle(self, seed):
        market = _small_market(seed)
        _, columnar = _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["unshared+throttle"],
        )
        # Rounds where no phrase occurs skip the scoring batch, so the
        # count is bounded by, not equal to, the number of rounds.
        assert 1 <= columnar.counter(names.COLUMNAR_SCORE_BATCHES) <= 8
        assert columnar.counter(names.COLUMNAR_SCORE_ROWS) > 0

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_unshared_no_throttle(self, seed):
        market = _small_market(seed)
        _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["unshared"],
        )

    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_shared(self, seed):
        market = _small_market(seed)
        _, columnar = _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["shared"],
        )
        # The columnar executor really ran fragments, not a fallback.
        assert columnar.counter(names.PLAN_LEAF_SCANS) > 0

    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_shared_with_caches_verified(self, seed):
        # The columnar exec cache is native now: fragments persist
        # across rounds and only dirty rows force rescans, with the
        # verify cross-check diffing every absorbed score.
        market = _small_market(seed)
        _, columnar = _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["shared+caches"],
        )
        assert columnar.counter(names.PLAN_LEAF_SCANS) > 0
        # Eight rounds on a static-bid market: later rounds must serve
        # clean fragments straight from the cross-round cache.
        assert columnar.counter(names.PLAN_NODES_REUSED) > 0

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_shared_sort_with_overrides(self, seed):
        market = _small_market(seed)
        advertisers = _with_overrides(market.advertisers, seed)
        _, columnar = _run_lockstep(
            advertisers, market.search_rates, seed,
            **CONFIGS["shared-sort"],
        )
        assert columnar.counter(names.TA_RUNS) > 0
        assert columnar.counter(names.TA_SORTED_ACCESSES) > 0

    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_shared_sort_cache_columnar_native(self, seed):
        # sort_cache under the columnar layout persists the shared
        # presorted order across rounds and repairs only dirty rows
        # back into it (ColumnarSortCache).  Outcomes must not move,
        # and clean rows must actually be carried over.
        market = _small_market(seed)
        _, columnar = _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["shared-sort+cache"],
        )
        assert columnar.counter(names.TA_RUNS) > 0
        assert columnar.counter(names.SORT_STREAMS_REUSED) > 0


class TestLayoutValidation:
    def test_unknown_layout_rejected(self):
        market = _small_market(0)
        with pytest.raises(InvalidAuctionError, match="unknown layout"):
            _build(market.advertisers, market.search_rates, "rowwise", 0)

    def test_columnar_refuses_bounded_throttle(self):
        market = _small_market(0)
        with pytest.raises(InvalidAuctionError, match="bounded"):
            _build(
                market.advertisers, market.search_rates, "columnar", 0,
                throttle_mode="bounded",
            )

    def test_columnar_full_run_matches_object_end_to_end(self):
        # A plain .run() (engine-sampled phrases, terminal click flush)
        # as the CLI drives it, compared on the final report.
        market = _small_market(3)
        reports = {}
        for layout in ("object", "columnar"):
            engine = _build(
                market.advertisers, market.search_rates, layout, 3
            )
            reports[layout] = engine.run(10)
        assert (
            reports["object"].revenue_cents
            == reports["columnar"].revenue_cents
        )
        assert (
            reports["object"].forgiven_cents
            == reports["columnar"].forgiven_cents
        )
        assert reports["object"].clicks == reports["columnar"].clicks


def _serve_trace(market, seed, **kw):
    """Serve a fixed arrival trace; return the per-query outcome tuple.

    The traffic generator is seeded identically for every engine
    configuration, so the traces are the same queries in the same order
    and the returned tuples are directly comparable.
    """
    engine = _build(
        market.advertisers, market.search_rates, kw.pop("layout"), seed, **kw
    )
    traffic = TrafficGenerator.from_search_rates(
        market.search_rates, rate_qps=80.0, seed=seed
    )
    loop = ServingEngine(engine, traffic, keep_history=True)
    report = loop.run(40)
    trace = [
        (query.phrase, query.allocation) for query in report.history
    ]
    return (
        trace,
        report.revenue_cents,
        report.forgiven_cents,
        report.clicks,
        engine.budget_manager.spent_snapshot(),
    )


class TestCachedColumnarServing:
    """The tentpole's headline path: serving with columnar caches on.

    Per-query drains feed the columnar dirty masks, so the serving loop
    is where cross-round caching and the vectorized kernels genuinely
    compose.  The trace -- every query's phrase, winners, and prices,
    plus click money and final budgets -- must be byte-identical to the
    object layout serving the same arrivals with the same caches.  The
    full 50-seed identity (and the speedup) is gated in
    ``benchmarks/test_bench_columnar_serving.py``; this sweep keeps a
    fast tier-1 guard on the same claim.
    """

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_exec_cache_serving_trace_identical(self, seed):
        market = _small_market(seed)
        config = dict(mode="shared", exec_cache=True, cache_verify=True)
        object_trace = _serve_trace(market, seed, layout="object", **config)
        columnar_trace = _serve_trace(
            market, seed, layout="columnar", **config
        )
        assert object_trace == columnar_trace

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_sort_cache_serving_trace_identical(self, seed):
        market = _small_market(seed)
        config = dict(mode="shared-sort", sort_cache=True, cache_verify=True)
        object_trace = _serve_trace(market, seed, layout="object", **config)
        columnar_trace = _serve_trace(
            market, seed, layout="columnar", **config
        )
        assert object_trace == columnar_trace

    def test_cached_equals_uncached_columnar_serving(self):
        # Caches change the work, never the trace: columnar serving
        # with each cache on equals columnar serving with caches off.
        market = _small_market(11)
        baseline = _serve_trace(
            market, 11, layout="columnar", mode="shared"
        )
        assert baseline == _serve_trace(
            market, 11, layout="columnar", mode="shared",
            exec_cache=True, cache_verify=True,
        )
        sort_baseline = _serve_trace(
            market, 11, layout="columnar", mode="shared-sort"
        )
        assert sort_baseline == _serve_trace(
            market, 11, layout="columnar", mode="shared-sort",
            sort_cache=True, cache_verify=True,
        )


class TestDirtyMaskMatchesObjectCone:
    """Property: the columnar dirty mask IS the object dirty cone.

    Both cross-round executors see the same score stream and the same
    declared dirty sets.  After every round, the rows the columnar
    executor treated as dirty must carry exactly the advertiser ids the
    object executor bumped (first sight or declared-and-changed), and
    the per-leaf epochs must agree -- the mask-based invalidation and
    the DAG ancestor-cone walk are the same function in different
    coordinates.
    """

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_dirty_rows_equal_object_dirty_leaves(self, data):
        ids = sorted(
            data.draw(
                st.sets(st.integers(0, 60), min_size=4, max_size=12),
                label="ids",
            )
        )
        num_queries = data.draw(st.integers(1, 4), label="queries")
        queries = [
            AggregateQuery(
                f"q{index}",
                data.draw(
                    st.sets(st.sampled_from(ids), min_size=1),
                    label=f"members{index}",
                ),
            )
            for index in range(num_queries)
        ]
        instance = SharedAggregationInstance(queries)
        store = ColumnarStore(
            [
                Advertiser(i, 1.0, phrases=frozenset({"p"}))
                for i in ids
            ]
        )
        plan = greedy_shared_plan(instance)
        object_exec = CrossRoundPlanExecutor(plan, 3, verify=True)
        columnar_exec = ColumnarFragmentExecutor(
            instance, store, 3, cross_round=True, verify=True
        )
        # A-equivalent queries (identical variable sets) deduplicate to
        # one canonical query; request the survivors, as the engine does.
        request = [
            query.name
            for query in instance.queries + instance.trivial_queries
        ]
        all_rows = np.arange(store.size, dtype=np.int64)
        score_by_row = np.zeros(store.size, dtype=np.float64)
        # Scores from a small value pool so ties and no-op "changes"
        # (declared dirty but same value) genuinely occur.
        value = st.integers(1, 6).map(lambda v: v / 2.0)
        for i in ids:
            score_by_row[store.row_of(i)] = data.draw(value, label=f"s{i}")
        for round_index in range(data.draw(st.integers(2, 4), label="rounds")):
            if round_index:
                declared = data.draw(
                    st.sets(st.sampled_from(ids)), label="declared"
                )
                for i in declared:
                    score_by_row[store.row_of(i)] = data.draw(value)
            else:
                declared = set()  # first sight: dirty without declaration
            epochs_before = {i: object_exec.leaf_epoch(i) for i in ids}
            result_object = object_exec.run_round(
                {i: float(score_by_row[store.row_of(i)]) for i in ids},
                request,
                dirty=declared,
            )
            result_columnar = columnar_exec.run_round(
                score_by_row, request, rows=all_rows, dirty=declared
            )
            for name in request:
                assert (
                    result_object.answers[name].entries
                    == result_columnar.answers[name].entries
                ), f"answers diverged in round {round_index}"
            bumped = {
                i for i in ids if object_exec.leaf_epoch(i) > epochs_before[i]
            }
            dirty_ids = {
                int(store.ids[row])
                for row in columnar_exec.dirty_rows_last_round()
            }
            assert dirty_ids == bumped
            for i in ids:
                assert columnar_exec.row_epoch(
                    store.row_of(i)
                ) == object_exec.leaf_epoch(i)
