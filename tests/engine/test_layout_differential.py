"""Layout differential: columnar kernels vs the object oracle.

``layout="columnar"`` swaps the engine's three hottest kernels --
effective scoring, per-phrase top-k, and TA sorted access -- for
vectorized numpy implementations.  The implementation promise is *byte
identity*, not approximate agreement: the same winners, the same GSP
prices, the same budget trajectories, round for round, under every mode
and cache combination.  The object layout is the oracle; these tests run
both layouts in lockstep on randomized markets across 50 seeds.
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("numpy")

from repro.core.advertiser import Advertiser
from repro.engine.pipeline import SharedAuctionEngine
from repro.errors import InvalidAuctionError
from repro.instrument import MetricsCollector, names
from repro.workloads.generator import MarketConfig, generate_market

DIFFERENTIAL_SEEDS = range(50)

# Every engine configuration the columnar layout supports, exercised
# with the caches both off and on and with the caches' exact soundness
# cross-check enabled (cache_verify=True is the constructor default).
CONFIGS = {
    "unshared": dict(mode="unshared", throttle=False),
    "unshared+throttle": dict(mode="unshared", throttle=True),
    "shared": dict(mode="shared"),
    "shared+caches": dict(
        mode="shared", exec_cache=True, throttle_cache=True,
        cache_verify=True,
    ),
    "shared-sort": dict(mode="shared-sort"),
    "shared-sort+cache": dict(
        mode="shared-sort", sort_cache=True, cache_verify=True
    ),
}


def _small_market(seed: int):
    return generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=3,
            specialists_per_category=5,
            generalists=3,
            generalist_categories=2,
            median_budget_cents=2_000,
            seed=seed,
        )
    )


def _with_overrides(advertisers, seed: int):
    """Give a third of the population per-phrase CTR overrides.

    The shared-sort TA kernel walks per-phrase CTR-ranked lists, so the
    ``c_i^q`` override path (Section III) needs its own coverage: the
    phrase-independent rank order and the per-phrase order genuinely
    differ on these markets.
    """
    rng = random.Random(f"overrides-{seed}")
    result = []
    for advertiser in advertisers:
        if rng.random() < 1 / 3 and advertiser.phrases:
            overrides = {
                phrase: round(rng.uniform(0.3, 1.8), 3)
                for phrase in sorted(advertiser.phrases)
                if rng.random() < 0.5
            }
            advertiser = Advertiser(
                advertiser.advertiser_id,
                bid=advertiser.bid,
                ctr_factor=advertiser.ctr_factor,
                daily_budget=advertiser.daily_budget,
                phrases=advertiser.phrases,
                phrase_ctr_factors=overrides,
            )
        result.append(advertiser)
    return result


def _build(advertisers, search_rates, layout, seed, collector=None, **kw):
    return SharedAuctionEngine(
        advertisers,
        slot_factors=[0.3, 0.2, 0.1],
        search_rates=search_rates,
        layout=layout,
        seed=seed,
        collector=collector,
        **kw,
    )


def _run_lockstep(advertisers, search_rates, seed, rounds=8, **kw):
    """Drive object and columnar engines round-for-round in lockstep.

    The object engine samples the occurring phrases; both engines then
    run the identical set with synchronized RNG states, and every
    outcome surface -- allocations (winners *and* prices), revenue,
    forgiven value, displays, clicks, and each advertiser's remaining
    budget -- must match exactly.
    """
    collector_object = MetricsCollector()
    collector_columnar = MetricsCollector()
    engine_object = _build(
        advertisers, search_rates, "object", seed, collector_object, **kw
    )
    engine_columnar = _build(
        advertisers, search_rates, "columnar", seed, collector_columnar,
        **kw,
    )
    for round_index in range(rounds):
        occurring = engine_object.sample_occurring_phrases()
        engine_columnar._rng.setstate(engine_object._rng.getstate())
        report_object = engine_object.run_round(occurring)
        report_columnar = engine_columnar.run_round(occurring)
        assert report_object.allocations == report_columnar.allocations, (
            f"layouts diverged in round {round_index} (seed {seed})"
        )
        assert report_object.revenue_cents == report_columnar.revenue_cents
        assert (
            report_object.forgiven_cents == report_columnar.forgiven_cents
        )
        assert report_object.displays == report_columnar.displays
        assert report_object.clicks == report_columnar.clicks
        for advertiser in advertisers:
            assert engine_object.budget_manager.remaining_cents(
                advertiser.advertiser_id
            ) == engine_columnar.budget_manager.remaining_cents(
                advertiser.advertiser_id
            ), f"budget trajectory diverged in round {round_index}"
        engine_object._rng.setstate(engine_columnar._rng.getstate())
    assert (
        engine_object.budget_manager.spent_snapshot()
        == engine_columnar.budget_manager.spent_snapshot()
    )
    return collector_object, collector_columnar


class TestColumnarMatchesObject:
    """The full 50-seed sweep on the cheap configurations."""

    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_unshared_with_throttle(self, seed):
        market = _small_market(seed)
        _, columnar = _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["unshared+throttle"],
        )
        # Rounds where no phrase occurs skip the scoring batch, so the
        # count is bounded by, not equal to, the number of rounds.
        assert 1 <= columnar.counter(names.COLUMNAR_SCORE_BATCHES) <= 8
        assert columnar.counter(names.COLUMNAR_SCORE_ROWS) > 0

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_unshared_no_throttle(self, seed):
        market = _small_market(seed)
        _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["unshared"],
        )

    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_shared(self, seed):
        market = _small_market(seed)
        _, columnar = _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["shared"],
        )
        # The columnar executor really ran fragments, not a fallback.
        assert columnar.counter(names.PLAN_LEAF_SCANS) > 0

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_shared_with_caches_verified(self, seed):
        market = _small_market(seed)
        _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["shared+caches"],
        )

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_shared_sort_with_overrides(self, seed):
        market = _small_market(seed)
        advertisers = _with_overrides(market.advertisers, seed)
        _, columnar = _run_lockstep(
            advertisers, market.search_rates, seed,
            **CONFIGS["shared-sort"],
        )
        assert columnar.counter(names.TA_RUNS) > 0
        assert columnar.counter(names.TA_SORTED_ACCESSES) > 0

    @pytest.mark.parametrize("seed", range(0, 50, 10))
    def test_shared_sort_cache_stays_object_backed(self, seed):
        # sort_cache keeps the object-side merge network; the columnar
        # layout feeds it vectorized scores.  Outcomes must not move.
        market = _small_market(seed)
        _run_lockstep(
            market.advertisers, market.search_rates, seed,
            **CONFIGS["shared-sort+cache"],
        )


class TestLayoutValidation:
    def test_unknown_layout_rejected(self):
        market = _small_market(0)
        with pytest.raises(InvalidAuctionError, match="unknown layout"):
            _build(market.advertisers, market.search_rates, "rowwise", 0)

    def test_columnar_refuses_bounded_throttle(self):
        market = _small_market(0)
        with pytest.raises(InvalidAuctionError, match="bounded"):
            _build(
                market.advertisers, market.search_rates, "columnar", 0,
                throttle_mode="bounded",
            )

    def test_columnar_full_run_matches_object_end_to_end(self):
        # A plain .run() (engine-sampled phrases, terminal click flush)
        # as the CLI drives it, compared on the final report.
        market = _small_market(3)
        reports = {}
        for layout in ("object", "columnar"):
            engine = _build(
                market.advertisers, market.search_rates, layout, 3
            )
            reports[layout] = engine.run(10)
        assert (
            reports["object"].revenue_cents
            == reports["columnar"].revenue_cents
        )
        assert (
            reports["object"].forgiven_cents
            == reports["columnar"].forgiven_cents
        )
        assert reports["object"].clicks == reports["columnar"].clicks
