"""Differential battery for the incremental throttle layer.

The tentpole claim mirrors the repo's other cache claims: the
change-feed-driven throttle cache and the bound-driven bounded selection
change the *work*, never the *auction*.  Over 50 seeded tight-budget
markets, every throttle configuration -- per-round exact recompute,
exact + throttle cache, bounded selection, bounded + throttle cache --
must produce bit-identical winners, prices, clicks, and budget
trajectories, on both the batch path (``run_round``) and the serving
path (``serve_query``).  Cached configurations run with
``cache_verify=True``: any book movement not covered by a published
event raises instead of silently diverging.
"""

from __future__ import annotations

import pytest

from repro.engine import SharedAuctionEngine
from repro.serving import ServingEngine, TrafficGenerator
from repro.workloads.generator import MarketConfig, generate_market

SEEDS = range(50)
BATCH_ROUNDS = 6
SERVING_QUERIES = 20
SLOT_FACTORS = [0.3, 0.2]
CLICK_DELAY_ROUNDS = 2.0  # in-flight clicks keep the ledgers non-empty

THROTTLE_VARIANTS = [
    ("exact +throttle-cache", {"throttle_cache": True, "cache_verify": True}),
    ("bounded", {"throttle_mode": "bounded"}),
    (
        "bounded +throttle-cache",
        {
            "throttle_mode": "bounded",
            "throttle_cache": True,
            "cache_verify": True,
        },
    ),
]


def tight_market(seed: int):
    """Budgets small enough that throttling genuinely moves rankings."""
    return generate_market(
        MarketConfig(
            num_categories=2,
            phrases_per_category=3,
            specialists_per_category=5,
            generalists=3,
            median_budget_cents=1_200,
            seed=seed,
        )
    )


def make_engine(market, seed: int, **kwargs) -> SharedAuctionEngine:
    return SharedAuctionEngine(
        market.advertisers,
        slot_factors=SLOT_FACTORS,
        search_rates=market.search_rates,
        mode=kwargs.pop("mode", "unshared"),
        throttle=True,
        mean_click_delay_rounds=CLICK_DELAY_ROUNDS,
        seed=seed,
        **kwargs,
    )


def batch_outcome(market, seed: int, **kwargs):
    """Run the batch path; identical seeds sample identical phrases, so
    outcome tuples are comparable across configurations as long as the
    auctions themselves agree -- which is exactly the assertion."""
    engine = make_engine(market, seed, **kwargs)
    report = engine.run(BATCH_ROUNDS)
    return (
        [r.allocations for r in report.history],
        report.revenue_cents,
        report.forgiven_cents,
        engine.budget_manager.spent_snapshot(),
    )


def serving_outcome(market, arrivals, seed: int, **kwargs):
    engine = make_engine(market, seed, **kwargs)
    traffic = TrafficGenerator.from_search_rates(
        market.search_rates, rate_qps=100.0, seed=seed
    )
    loop = ServingEngine(engine, traffic)
    outcomes = []
    trajectory = []
    for arrival in arrivals:
        report = loop.serve_one(arrival)
        outcomes.append(
            (
                arrival.phrase,
                report.allocation,
                report.revenue_cents,
                report.forgiven_cents,
                report.clicks,
            )
        )
        trajectory.append(engine.budget_manager.spent_snapshot())
    engine.settle_remaining_clicks()
    return outcomes, trajectory, engine.budget_manager.spent_snapshot()


class TestBatchThrottleDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_throttle_configs_agree(self, seed):
        market = tight_market(seed)
        baseline = batch_outcome(market, seed)
        # The comparison must not be vacuous: money moved.
        assert baseline[3], f"seed {seed} produced no spend at all"
        for label, config in THROTTLE_VARIANTS:
            assert batch_outcome(market, seed, **config) == baseline, (
                f"{label} diverged from exact recompute (seed {seed})"
            )


class TestServingThrottleDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_throttle_configs_agree_per_query(self, seed):
        market = tight_market(seed)
        traffic = TrafficGenerator.from_search_rates(
            market.search_rates, rate_qps=100.0, zipf_exponent=1.2, seed=seed
        )
        arrivals = traffic.take(SERVING_QUERIES)
        baseline = serving_outcome(market, arrivals, seed)
        for label, config in THROTTLE_VARIANTS:
            assert serving_outcome(market, arrivals, seed, **config) == (
                baseline
            ), f"{label} diverged from exact recompute (seed {seed})"


class TestBoundedAcrossModes:
    """Bounded selection bypasses plan/sort construction entirely, so it
    must agree with the exact path under every engine mode's CTR-factor
    wiring -- shared-sort in particular scales by ``ctr_factor_for``."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("mode", ["unshared", "shared", "shared-sort"])
    def test_bounded_matches_exact(self, mode, seed):
        market = tight_market(seed)
        exact = batch_outcome(market, seed, mode=mode)
        bounded = batch_outcome(
            market, seed, mode=mode, throttle_mode="bounded",
            throttle_cache=True, cache_verify=True,
        )
        assert bounded == exact
