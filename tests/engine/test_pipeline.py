"""Tests for the end-to-end shared auction engine."""

from __future__ import annotations

import pytest

from repro.core.advertiser import Advertiser
from repro.engine.pipeline import SharedAuctionEngine
from repro.errors import InvalidAuctionError


def build_engine(advertisers, mode="shared", seed=5, **kwargs):
    phrases = sorted({p for a in advertisers for p in a.phrases})
    return SharedAuctionEngine(
        advertisers,
        slot_factors=[0.3, 0.2],
        search_rates={p: 0.8 for p in phrases},
        mode=mode,
        seed=seed,
        **kwargs,
    )


@pytest.fixture
def population(simple_market):
    advertisers, _model, _phrases = simple_market
    return advertisers


class TestConstruction:
    def test_unknown_mode_rejected(self, population):
        with pytest.raises(InvalidAuctionError):
            build_engine(population, mode="turbo")

    def test_duplicate_ids_rejected(self, population):
        with pytest.raises(InvalidAuctionError):
            build_engine(population + [population[0]])

    def test_phrase_map_built_from_interests(self, population):
        engine = build_engine(population)
        assert set(engine.phrase_advertisers) == {"boots", "heels", "sandals"}
        assert 0 in engine.phrase_advertisers["boots"]


class TestRoundResolution:
    def test_unknown_phrase_rejected(self, population):
        engine = build_engine(population)
        with pytest.raises(InvalidAuctionError):
            engine.run_round(["unicorns"])

    def test_empty_round_is_cheap(self, population):
        engine = build_engine(population)
        report = engine.run_round([])
        assert report.merges == 0
        assert report.displays == 0

    def test_displays_bounded_by_slots(self, population):
        engine = build_engine(population)
        report = engine.run_round(["boots", "heels"])
        assert report.displays <= 2 * 2  # two phrases, two slots

    def test_shared_and_unshared_produce_identical_outcomes(self, population):
        """The core exactness guarantee: sharing changes work, never
        results."""
        shared = build_engine(population, mode="shared", seed=9)
        unshared = build_engine(population, mode="unshared", seed=9)
        report_s = shared.run(40)
        report_u = unshared.run(40)
        assert report_s.revenue_cents == report_u.revenue_cents
        assert report_s.displays == report_u.displays
        assert report_s.clicks == report_u.clicks
        assert report_s.forgiven_cents == report_u.forgiven_cents

    def test_shared_mode_scans_fewer_advertisers(self):
        shared_phrases = frozenset({"boots", "heels"})
        advertisers = [
            Advertiser(i, bid=1.0 + i * 0.01, phrases=shared_phrases)
            for i in range(20)
        ] + [
            Advertiser(100 + i, bid=1.0, phrases=frozenset({"boots"}))
            for i in range(4)
        ]
        shared = build_engine(advertisers, mode="shared", seed=1)
        unshared = build_engine(advertisers, mode="unshared", seed=1)
        rounds = 20
        report_s = shared.run(rounds)
        report_u = unshared.run(rounds)
        assert report_s.scans < report_u.scans

    def test_work_counters_populate(self, population):
        engine = build_engine(population)
        report = engine.run(10)
        assert report.rounds == 10
        assert report.merges >= 0
        assert len(report.history) == 10


class TestBudgets:
    def test_budget_exhaustion_stops_spending(self):
        advertisers = [
            Advertiser(
                0, bid=2.0, daily_budget=4.0, phrases=frozenset({"p"})
            ),
            Advertiser(1, bid=1.0, phrases=frozenset({"p"})),
        ]
        engine = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.9],
            search_rates={"p": 1.0},
            mode="shared",
            throttle=True,
            mean_click_delay_rounds=0.0,
            seed=3,
        )
        report = engine.run(200)
        spent = engine.budget_manager.spent_cents(0)
        assert spent <= 400
        assert report.forgiven_cents == 0

    def test_naive_engine_can_forgive_clicks(self):
        """Without throttling, delayed clicks outrun the budget."""
        advertisers = [
            Advertiser(
                0, bid=2.0, ctr_factor=1.0, daily_budget=3.0,
                phrases=frozenset({"p"}),
            ),
            Advertiser(1, bid=1.0, phrases=frozenset({"p"})),
        ]
        naive = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.95],
            search_rates={"p": 1.0},
            mode="shared",
            throttle=False,
            mean_click_delay_rounds=4.0,
            click_horizon_rounds=12,
            seed=8,
        )
        throttled = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.95],
            search_rates={"p": 1.0},
            mode="shared",
            throttle=True,
            mean_click_delay_rounds=4.0,
            click_horizon_rounds=12,
            seed=8,
        )
        report_naive = naive.run(120)
        report_throttled = throttled.run(120)
        assert report_naive.forgiven_cents > 0
        assert report_throttled.forgiven_cents == 0

    def test_gsp_price_never_exceeds_effective_bid(self, population):
        engine = build_engine(population)
        engine.run(30)
        for advertiser in population:
            spent = engine.budget_manager.spent_cents(
                advertiser.advertiser_id
            )
            if advertiser.daily_budget != float("inf"):
                assert spent <= int(advertiser.daily_budget * 100)
