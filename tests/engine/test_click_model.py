"""Tests for the delayed click model."""

from __future__ import annotations

import random

import pytest

from repro.engine.click_model import DelayedClickModel
from repro.errors import InvalidAuctionError


def model(mean=1.0, horizon=8, seed=0):
    return DelayedClickModel(mean, horizon, random.Random(seed))


class TestValidation:
    def test_negative_mean_rejected(self):
        with pytest.raises(InvalidAuctionError):
            model(mean=-1.0)

    def test_non_positive_horizon_rejected(self):
        with pytest.raises(InvalidAuctionError):
            model(horizon=0)

    def test_bad_ctr_rejected(self):
        with pytest.raises(InvalidAuctionError):
            model().record_display(1, "p", 10, 1.5, 0)


class TestSampling:
    def test_ctr_zero_never_clicks(self):
        m = model()
        for i in range(100):
            assert not m.record_display(i, "p", 10, 0.0, 0)
        assert m.pending_count == 0

    def test_ctr_one_always_schedules(self):
        m = model(mean=0.0)
        for i in range(50):
            assert m.record_display(i, "p", 10, 1.0, 0)
        assert m.pending_count == 50

    def test_zero_mean_delay_arrives_next_round(self):
        m = model(mean=0.0)
        m.record_display(1, "p", 10, 1.0, 5)
        assert m.arrivals(5) == []
        (click,) = m.arrivals(6)
        assert click.arrival_round == 6
        assert click.display_round == 5

    def test_arrivals_pop_in_order(self):
        m = model(mean=0.0)
        m.record_display(2, "p", 10, 1.0, 0)
        m.record_display(1, "p", 10, 1.0, 0)
        clicks = m.arrivals(10)
        assert [c.advertiser_id for c in clicks] == [1, 2]
        assert m.pending_count == 0

    def test_flush_returns_everything(self):
        m = model(mean=3.0)
        scheduled = sum(
            m.record_display(i, "p", 10, 1.0, 0) for i in range(30)
        )
        flushed = m.flush()
        assert m.pending_count == 0
        # Clicks whose sampled delay exceeded the horizon were dropped at
        # record time; everything else must be flushed.
        assert len(flushed) == scheduled
        assert scheduled > 0

    def test_deterministic_by_seed(self):
        a, b = model(seed=3), model(seed=3)
        outcomes_a = [a.record_display(i, "p", 10, 0.5, 0) for i in range(50)]
        outcomes_b = [b.record_display(i, "p", 10, 0.5, 0) for i in range(50)]
        assert outcomes_a == outcomes_b

    def test_click_rate_roughly_ctr(self):
        m = model(seed=11)
        clicks = sum(
            m.record_display(i, "p", 10, 0.3, 0) for i in range(3000)
        )
        assert 0.25 < clicks / 3000 < 0.35

    def test_delays_within_horizon(self):
        m = model(mean=4.0, horizon=6, seed=2)
        for i in range(300):
            m.record_display(i, "p", 10, 1.0, 0)
        for click in m.flush():
            assert 1 <= click.arrival_round <= 6
