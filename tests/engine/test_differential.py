"""Differential testing: shared vs unshared winner determination.

The paper's central claim is that sharing changes the *work*, never the
*auction*: a shared plan (Section II) or shared sort + threshold
algorithm (Section III) must produce exactly the winners, prices, and
budget trajectories of independent per-phrase scans.  These tests run
the engine in both modes on randomized markets over many seeds, driving
each round with the same occurring phrases, and assert the outcomes are
identical round by round -- and, via the instrumentation counters, that
sharing never scans more advertiser entries than the unshared baseline.
"""

from __future__ import annotations

import pytest

from repro.engine.pipeline import SharedAuctionEngine
from repro.instrument import MetricsCollector, names
from repro.workloads.generator import MarketConfig, generate_market

DIFFERENTIAL_SEEDS = range(50)


def _small_market(seed: int):
    return generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=3,
            specialists_per_category=5,
            generalists=3,
            generalist_categories=2,
            median_budget_cents=2_000,
            seed=seed,
        )
    )


def _build(market, mode, seed, collector=None, exec_cache=False):
    return SharedAuctionEngine(
        market.advertisers,
        slot_factors=[0.3, 0.2, 0.1],
        search_rates=market.search_rates,
        mode=mode,
        seed=seed,
        collector=collector,
        exec_cache=exec_cache,
    )


def _run_paired(
    market, mode_a, mode_b, seed, rounds=8, cache_a=False, cache_b=False
):
    """Run two engines round-for-round on identical occurring phrases.

    Each engine holds its own ``random.Random(seed)``; sampling phrases
    from engine A and feeding them explicitly to both keeps B's RNG
    untouched by sampling, so click draws stay aligned *because* the
    displayed ads are identical -- which is exactly what is asserted.
    """
    collector_a = MetricsCollector()
    collector_b = MetricsCollector()
    engine_a = _build(market, mode_a, seed, collector_a, exec_cache=cache_a)
    engine_b = _build(market, mode_b, seed, collector_b, exec_cache=cache_b)
    for round_index in range(rounds):
        occurring = engine_a.sample_occurring_phrases()
        engine_b._rng.setstate(engine_a._rng.getstate())
        report_a = engine_a.run_round(occurring)
        report_b = engine_b.run_round(occurring)
        assert report_a.allocations == report_b.allocations, (
            f"{mode_a} vs {mode_b} diverged in round {round_index} "
            f"(seed {seed})"
        )
        assert report_a.revenue_cents == report_b.revenue_cents
        assert report_a.forgiven_cents == report_b.forgiven_cents
        assert report_a.displays == report_b.displays
        assert report_a.clicks == report_b.clicks
        for advertiser in market.advertisers:
            assert engine_a.budget_manager.remaining_cents(
                advertiser.advertiser_id
            ) == engine_b.budget_manager.remaining_cents(
                advertiser.advertiser_id
            ), f"budget trajectory diverged in round {round_index}"
        engine_a._rng.setstate(engine_b._rng.getstate())
    return collector_a, collector_b


class TestSharedMatchesUnshared:
    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_identical_outcomes_and_fewer_scans(self, seed):
        market = _small_market(seed)
        shared, unshared = _run_paired(market, "shared", "unshared", seed)
        # Work comparison via the counters: leaf reads of the shared plan
        # vs full per-phrase scans of the baseline.
        shared_scans = shared.counter(names.PLAN_LEAF_SCANS)
        unshared_scans = unshared.counter(names.TOPK_SCAN_ENTRIES)
        assert shared_scans <= unshared_scans
        assert unshared.counter(names.ENGINE_ROUNDS) == 8


class TestSharedSortMatchesUnshared:
    # The shared-sort pipeline is slower per round; a subset of seeds
    # keeps the three-way differential affordable.
    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_identical_outcomes(self, seed):
        market = _small_market(seed)
        shared_sort, unshared = _run_paired(
            market, "shared-sort", "unshared", seed
        )
        assert shared_sort.counter(names.TA_RUNS) > 0
        assert shared_sort.counter(names.TA_SORTED_ACCESSES) > 0


class TestExecCacheMatchesShared:
    """Cross-round caching is invisible to the auction (the tentpole's
    determinism contract): ``--exec-cache`` must replay the exact
    winners, prices, budget trajectories, and per-round allocations of
    uncached shared execution, while doing no more node work."""

    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_identical_outcomes_and_no_more_nodes(self, seed):
        market = _small_market(seed)
        cached, plain = _run_paired(
            market, "shared", "shared", seed, cache_a=True
        )
        # _run_paired already asserted allocations, revenue, and budget
        # trajectories round by round; here we check the work contract.
        assert cached.counter(names.PLAN_NODES) <= plain.counter(
            names.PLAN_NODES
        )
        assert cached.counter(names.PLAN_MERGES) <= plain.counter(
            names.PLAN_MERGES
        )
        # The uncached engine must never report cross-round counters.
        assert plain.counter(names.PLAN_NODES_REUSED) == 0
        assert plain.counter(names.PLAN_REVALIDATIONS) == 0

    def test_cache_actually_reuses_work(self):
        market = _small_market(11)
        cached, plain = _run_paired(
            market, "shared", "shared", 11, rounds=12, cache_a=True
        )
        assert (
            cached.counter(names.PLAN_NODES_REUSED)
            + cached.counter(names.PLAN_REVALIDATIONS)
            > 0
        )
        assert cached.gauges[names.PLAN_CACHE_RESIDENT] > 0


class TestRoundCounterRollups:
    def test_round_deltas_sum_to_engine_totals(self):
        market = _small_market(3)
        collector = MetricsCollector()
        engine = _build(market, "shared", seed=3, collector=collector)
        report = engine.run(6)
        assert report.counters is not None
        summed: dict = {}
        for round_report in report.history:
            assert round_report.counters is not None
            for name, value in round_report.counters.items():
                summed[name] = summed.get(name, 0) + value
        assert summed == report.counters
        assert report.counters[names.ENGINE_ROUNDS] == 6
        assert report.counters[names.ENGINE_DISPLAYS] == report.displays
        assert report.counters[names.ENGINE_REVENUE_CENTS] == sum(
            r.revenue_cents for r in report.history
        )

    def test_null_collector_reports_no_counters(self):
        market = _small_market(3)
        engine = _build(market, "shared", seed=3)
        report = engine.run(3)
        assert report.counters is None
        assert all(r.counters is None for r in report.history)

    def test_allocations_recorded_for_every_occurring_phrase(self):
        market = _small_market(4)
        engine = _build(market, "unshared", seed=4)
        for _ in range(5):
            report = engine.run_round()
            assert set(report.allocations) == set(report.occurring_phrases)
            for phrase, triples in report.allocations.items():
                slots = [slot for slot, _, _ in triples]
                assert slots == sorted(slots)
                assert report.displays >= len(triples) > 0 or triples == ()


class TestCollectorPurity:
    def test_collector_does_not_change_outcomes(self):
        market = _small_market(7)
        plain = _build(market, "shared", seed=7).run(8)
        instrumented = _build(
            market, "shared", seed=7, collector=MetricsCollector()
        ).run(8)
        assert plain.revenue_cents == instrumented.revenue_cents
        assert plain.displays == instrumented.displays
        assert plain.clicks == instrumented.clicks
        assert [r.allocations for r in plain.history] == [
            r.allocations for r in instrumented.history
        ]
