"""The unified invalidation bus: delivery semantics and consumer contracts.

Covers the :class:`repro.engine.changefeed.ChangeFeed` event bus itself
(kind filtering, drain ordering, push handlers, the ``active`` guard,
and the ``bus.*`` counters) and the contracts of its three consumers:

- the cross-round plan executor and sort cache receive dirty sets
  exclusively through their subscriptions once connected;
- ``verify=True`` keeps the exact value diff as a soundness cross-check
  and raises on any change no event covered;
- ``verify=False`` trusts the feed, serves from the (possibly stale)
  cache, and *self-heals* as soon as a covering event arrives;
- the two caches refine the same events by their own value domains --
  the exec cache by *scores*, the sort cache by *bids* -- so one event
  invalidates exactly the cache whose value actually moved
  (the regression pinning the semantics the bespoke pipelines left
  implicit and mutually inconsistent).
"""

from __future__ import annotations

import pytest

from repro.engine.changefeed import (
    EVENT_KINDS,
    AdvertiserAdded,
    AdvertiserRemoved,
    BidChanged,
    BudgetChanged,
    ChangeEvent,
    ChangeFeed,
    PhraseAdded,
    PhraseRemoved,
    QueryServed,
    RoundClosed,
)
from repro.core.topk import top_k_scan
from repro.errors import InvalidAuctionError, InvalidPlanError
from repro.instrument import MetricsCollector, names
from repro.plans.executor import CrossRoundPlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.sharedsort.cache import CrossRoundSortCache
from repro.sharedsort.plan import build_shared_sort_plan


def drain_items(stream):
    items = []
    index = 0
    while (item := stream.item(index)) is not None:
        items.append(item)
        index += 1
    return items


PHRASES = {"alpha": (1, 2, 3), "beta": (2, 3, 4)}


def small_plan():
    instance = SharedAggregationInstance(
        AggregateQuery(phrase, set(ids), 1.0)
        for phrase, ids in PHRASES.items()
    )
    return greedy_shared_plan(instance)


class TestChangeFeedDelivery:
    def test_inactive_until_someone_listens(self):
        feed = ChangeFeed()
        assert not feed.active
        feed.subscribe("watcher")
        assert feed.active

    def test_attach_also_activates(self):
        feed = ChangeFeed()
        feed.attach(lambda event: None, kinds=("round_closed",))
        assert feed.active

    def test_drain_returns_publication_order_and_empties(self):
        feed = ChangeFeed()
        sub = feed.subscribe("watcher")
        events = [BidChanged(1), BudgetChanged(2), RoundClosed(0)]
        feed.publish_all(events)
        assert sub.pending == 3
        assert sub.drain() == events
        assert sub.pending == 0
        assert sub.drain() == []

    def test_kind_filter_drops_unmatched_events(self):
        feed = ChangeFeed()
        bids_only = feed.subscribe("bids", kinds=("bid_changed",))
        everything = feed.subscribe("all")
        feed.publish(BidChanged(1))
        feed.publish(BudgetChanged(2))
        assert bids_only.drain() == [BidChanged(1)]
        assert len(everything.drain()) == 2

    def test_unknown_kind_rejected(self):
        feed = ChangeFeed()
        with pytest.raises(InvalidAuctionError, match="unknown event kinds"):
            feed.subscribe("bad", kinds=("bid_chnaged",))
        with pytest.raises(InvalidAuctionError, match="unknown event kinds"):
            feed.attach(lambda event: None, kinds=("no_such_kind",))

    def test_push_handler_fires_at_publish_time(self):
        feed = ChangeFeed()
        seen = []
        feed.attach(seen.append, kinds=("phrase_added", "phrase_removed"))
        feed.publish(PhraseAdded("p", frozenset({1})))
        feed.publish(BidChanged(1))  # filtered out
        feed.publish(PhraseRemoved("p"))
        assert [event.kind for event in seen] == [
            "phrase_added",
            "phrase_removed",
        ]

    def test_counters_track_published_and_consumed(self):
        collector = MetricsCollector()
        feed = ChangeFeed(collector)
        sub = feed.subscribe("a", kinds=("bid_changed",))
        feed.attach(lambda event: None, kinds=("bid_changed",))
        feed.publish(BidChanged(1))   # queued once, pushed once
        feed.publish(RoundClosed(0))  # matched by nobody
        sub.drain()
        assert feed.events_published == 2
        assert feed.events_consumed == 2  # one push + one drain
        assert collector.counter(names.BUS_EVENTS_PUBLISHED) == 2
        assert collector.counter(names.BUS_EVENTS_CONSUMED) == 2


class TestEventShapes:
    def test_every_kind_is_registered(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS)) == 8

    @pytest.mark.parametrize(
        "event, dirty",
        [
            (BidChanged(7), {7}),
            (BudgetChanged(7), {7}),
            (AdvertiserAdded(7, frozenset({"p"})), {7}),
            (AdvertiserRemoved(7), {7}),
            (PhraseAdded("p", frozenset({1, 2})), {1, 2}),
            (PhraseRemoved("p"), set()),
            (RoundClosed(3), set()),
            (QueryServed(4, "p"), set()),
        ],
    )
    def test_dirty_advertisers(self, event, dirty):
        assert event.dirty_advertisers == frozenset(dirty)
        assert event.kind in EVENT_KINDS

    def test_base_event_is_inert(self):
        event = ChangeEvent()
        assert event.kind == "change"
        assert event.dirty_advertisers == frozenset()


class TestConnectedExecutor:
    def test_connect_twice_rejected(self):
        feed = ChangeFeed()
        executor = CrossRoundPlanExecutor(small_plan(), 2)
        executor.connect(feed)
        with pytest.raises(InvalidPlanError, match="already connected"):
            executor.connect(feed)

    def test_explicit_dirty_argument_rejected_once_connected(self):
        feed = ChangeFeed()
        executor = CrossRoundPlanExecutor(small_plan(), 2)
        executor.connect(feed)
        scores = {i: float(i) for i in range(1, 5)}
        executor.run_round(scores)
        with pytest.raises(InvalidPlanError, match="change feed"):
            executor.run_round(scores, dirty={1})

    def test_events_drive_invalidation(self):
        feed = ChangeFeed()
        executor = CrossRoundPlanExecutor(small_plan(), 2)
        executor.connect(feed)
        scores = {i: float(i) for i in range(1, 5)}
        executor.run_round(dict(scores))
        scores[2] = 40.0
        feed.publish(BudgetChanged(2))
        result = executor.run_round(dict(scores))
        assert result.nodes_invalidated > 0
        for query in executor.plan.instance.queries:
            assert result.answers[query.name] == top_k_scan(
                2, [(scores[v], v) for v in sorted(query.variables)]
            )

    def test_undeclared_change_raises_under_verify(self):
        feed = ChangeFeed()
        executor = CrossRoundPlanExecutor(small_plan(), 2, verify=True)
        executor.connect(feed)
        scores = {i: float(i) for i in range(1, 5)}
        executor.run_round(dict(scores))
        scores[3] = 99.0  # no event published
        with pytest.raises(InvalidPlanError, match="unsound dirty set"):
            executor.run_round(dict(scores))

    def test_unverified_executor_trusts_then_self_heals(self):
        feed = ChangeFeed()
        executor = CrossRoundPlanExecutor(small_plan(), 2, verify=False)
        executor.connect(feed)
        scores = {i: float(i) for i in range(1, 5)}
        executor.run_round(dict(scores))
        stale_scores = dict(scores)
        scores[3] = 99.0  # changed, but no event: the feed is trusted
        trusted = executor.run_round(dict(scores))
        for query in executor.plan.instance.queries:
            assert trusted.answers[query.name] == top_k_scan(
                2, [(stale_scores[v], v) for v in sorted(query.variables)]
            ), "undeclared change must serve the last covered value"
        # A later covering event repairs the cache: the kept snapshot
        # still holds the old score, so the diff fires and invalidates.
        feed.publish(BidChanged(3))
        healed = executor.run_round(dict(scores))
        assert healed.nodes_invalidated > 0
        for query in executor.plan.instance.queries:
            assert healed.answers[query.name] == top_k_scan(
                2, [(scores[v], v) for v in sorted(query.variables)]
            )

    def test_pending_events_survive_rounds_that_do_not_score_them(self):
        # An event for an advertiser outside the round's scored set must
        # not be lost: it stays pending until the advertiser next occurs.
        feed = ChangeFeed()
        executor = CrossRoundPlanExecutor(small_plan(), 2)
        executor.connect(feed)
        scores = {i: float(i) for i in range(1, 5)}
        executor.run_round(dict(scores))
        scores[1] = 50.0
        feed.publish(BidChanged(1))
        # A round over 'beta' only: advertiser 1 is not scored.
        beta_scores = {i: scores[i] for i in PHRASES["beta"]}
        executor.run_round(beta_scores, occurring=["beta"])
        # No drain in between: the pending declaration must still cover
        # advertiser 1 when it reappears, or verify=True would raise.
        result = executor.run_round(dict(scores))
        assert result.answers["alpha"] == top_k_scan(
            2, [(scores[v], v) for v in sorted(PHRASES["alpha"])]
        )


class TestConnectedSortCache:
    def test_connect_twice_rejected(self):
        plan = build_shared_sort_plan(
            {p: list(ids) for p, ids in PHRASES.items()}, 1.0
        )
        cache = CrossRoundSortCache(plan)
        feed = ChangeFeed()
        cache.connect(feed)
        with pytest.raises(InvalidPlanError, match="already connected"):
            cache.connect(feed)

    def test_undeclared_bid_change_raises_under_verify(self):
        plan = build_shared_sort_plan(
            {p: list(ids) for p, ids in PHRASES.items()}, 1.0
        )
        cache = CrossRoundSortCache(plan, verify=True)
        feed = ChangeFeed()
        cache.connect(feed)
        bids = {i: float(i) for i in range(1, 5)}
        cache.instantiate(dict(bids))
        bids[2] = 9.0  # no event published
        with pytest.raises(InvalidPlanError, match="unsound change feed"):
            cache.instantiate(dict(bids))

    def test_unverified_sort_cache_trusts_then_self_heals(self):
        plan = build_shared_sort_plan(
            {p: list(ids) for p, ids in PHRASES.items()}, 1.0
        )
        cache = CrossRoundSortCache(plan, verify=False)
        feed = ChangeFeed()
        cache.connect(feed)
        bids = {i: float(i) for i in range(1, 5)}
        live = cache.instantiate(dict(bids))
        for phrase in sorted(PHRASES):
            drain_items(live.stream_for_phrase(phrase))
        stale_bids = dict(bids)
        bids[2] = 9.0  # changed, but no event: the feed is trusted
        trusted = cache.instantiate(dict(bids))
        for phrase in sorted(PHRASES):
            assert drain_items(trusted.stream_for_phrase(phrase)) == (
                drain_items(plan.instantiate(stale_bids).stream_for_phrase(phrase))
            ), "undeclared change must replay the last covered streams"
        feed.publish(BudgetChanged(2))
        healed = cache.instantiate(dict(bids))
        for phrase in sorted(PHRASES):
            assert drain_items(healed.stream_for_phrase(phrase)) == (
                drain_items(plan.instantiate(bids).stream_for_phrase(phrase))
            )


class TestDirtyDomainsUnified:
    """One event stream, two value domains -- the pinned semantics.

    Historically the exec cache diffed *scores* while the sort cache
    diffed *bids*, each against its own bespoke declaration pipeline.
    On the bus both consume identical events and refine them by their
    own domain: a declared advertiser dirties a cache only if the value
    *that cache* ranks by actually moved.  A bid change that cancels
    out of the score (say the CTR factor moved the other way) must
    invalidate sort streams but not plan nodes, and a score change at
    constant bid (a budget-driven throttle move scaled by CTR) the
    converse.
    """

    def _build(self):
        feed = ChangeFeed()
        executor = CrossRoundPlanExecutor(small_plan(), 2, verify=True)
        executor.connect(feed)
        sort_plan = build_shared_sort_plan(
            {p: list(ids) for p, ids in PHRASES.items()}, 1.0
        )
        sort_cache = CrossRoundSortCache(sort_plan, verify=True)
        sort_cache.connect(feed)
        return feed, executor, sort_cache

    def _check_answers(self, executor, result, scores, sort_cache, live, bids):
        for query in executor.plan.instance.queries:
            assert result.answers[query.name] == top_k_scan(
                2, [(scores[v], v) for v in sorted(query.variables)]
            )
        for phrase in sorted(PHRASES):
            assert drain_items(live.stream_for_phrase(phrase)) == drain_items(
                sort_cache.plan.instantiate(bids).stream_for_phrase(phrase)
            )

    def test_bid_change_with_constant_score_dirties_only_sort_streams(self):
        feed, executor, sort_cache = self._build()
        scores = {i: float(i) for i in range(1, 5)}
        bids = {i: float(i) for i in range(1, 5)}
        executor.run_round(dict(scores))
        live = sort_cache.instantiate(dict(bids))
        for phrase in sorted(PHRASES):
            drain_items(live.stream_for_phrase(phrase))

        bids[2] = 3.5  # bid moved; the score (bid x CTR) cancelled out
        feed.publish(BidChanged(2))
        result = executor.run_round(dict(scores))
        live = sort_cache.instantiate(dict(bids))
        # Exec cache: declared but unmoved in the score domain.
        assert result.nodes_invalidated == 0
        assert result.merges_performed == 0
        assert result.nodes_reused > 0
        # Sort cache: the bid really moved, streams above 2 rebuild.
        assert sort_cache.streams_invalidated > 0
        self._check_answers(executor, result, scores, sort_cache, live, bids)

    def test_score_change_with_constant_bid_dirties_only_plan_nodes(self):
        feed, executor, sort_cache = self._build()
        scores = {i: float(i) for i in range(1, 5)}
        bids = {i: float(i) for i in range(1, 5)}
        executor.run_round(dict(scores))
        live = sort_cache.instantiate(dict(bids))
        for phrase in sorted(PHRASES):
            drain_items(live.stream_for_phrase(phrase))

        scores[2] = 7.0  # CTR-side move: score changed, bid did not
        feed.publish(BudgetChanged(2))
        invalidated_before = sort_cache.streams_invalidated
        result = executor.run_round(dict(scores))
        live = sort_cache.instantiate(dict(bids))
        # Exec cache: the score really moved, the cone rebuilds.
        assert result.nodes_invalidated > 0
        # Sort cache: declared but unmoved in the bid domain.
        assert sort_cache.streams_invalidated == invalidated_before
        self._check_answers(executor, result, scores, sort_cache, live, bids)
