"""Tests for experiment-table formatting."""

from __future__ import annotations

import pytest

from repro.metrics.tables import ExperimentTable, format_table


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        header, separator, *rows = lines
        assert header.index("value") > 0
        assert set(separator) <= {"-", " "}
        assert all(len(line) == len(lines[0]) for line in rows)

    def test_floats_formatted(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestExperimentTable:
    def test_add_and_render(self):
        table = ExperimentTable("Fig.4", ["sr", "cost"])
        table.add(0.5, 12.25)
        rendered = table.render()
        assert "Fig.4" in rendered
        assert "12.2500" in rendered

    def test_add_wrong_arity_rejected(self):
        table = ExperimentTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_show_prints(self, capsys):
        table = ExperimentTable("t", ["a"])
        table.add("x")
        table.show()
        assert "== t ==" in capsys.readouterr().out
