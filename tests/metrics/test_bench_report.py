"""The bench-report merger: flattening, determinism, and the check gate.

``benchmarks/bench_report.py`` is the single place where "did a tracked
benchmark metric regress?" is answered, so its behaviors are tier-1
concerns: byte-stable output (otherwise the committed ``bench_tables``
churns on every run), exact dotted-path flattening, and a ``--check``
that actually fails on a regressed or missing metric.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent.parent / "benchmarks")
)

import bench_report


class TestFlatten:
    def test_nested_dicts_become_sorted_dotted_paths(self):
        data = {"b": {"y": 2, "x": 1}, "a": 0}
        assert list(bench_report.flatten(data)) == [
            ("a", 0), ("b.x", 1), ("b.y", 2)
        ]

    def test_non_dict_leaves_pass_through(self):
        data = {"list": [1, 2], "flag": True, "text": "hi"}
        flat = dict(bench_report.flatten(data))
        assert flat == {"list": [1, 2], "flag": True, "text": "hi"}


class TestFormatValue:
    def test_floats_use_six_significant_digits(self):
        assert bench_report.format_value(0.30000000000004) == "0.3"
        assert bench_report.format_value(3.79e-07) == "3.79e-07"

    def test_bools_are_not_floats_or_ints(self):
        assert bench_report.format_value(True) == "true"
        assert bench_report.format_value(False) == "false"

    def test_lists_render_elementwise(self):
        assert bench_report.format_value([1, 2.5, True]) == "[1, 2.5, true]"


class TestEvaluateTracked:
    def _benchmarks(self, **overrides):
        base = {
            stem: {}
            for stem, *_ in bench_report.TRACKED
        }
        base.update(overrides)
        return base

    def test_missing_file_is_flagged(self):
        rows = bench_report.evaluate_tracked({})
        assert rows and all(status == "MISSING" for *_, status in rows)

    def test_out_of_bound_value_is_regressed(self):
        benchmarks = self._benchmarks(
            BENCH_columnar={
                "kernels": {"speedup": 1.2, "outcomes_identical": True},
                "sharded": {"single_shard_identical": True},
            }
        )
        rows = {
            metric: status
            for metric, _, _, status in bench_report.evaluate_tracked(
                benchmarks
            )
        }
        assert rows["BENCH_columnar:kernels.speedup"] == "REGRESSED"
        assert (
            rows["BENCH_columnar:kernels.outcomes_identical"] == "ok"
        )

    def test_in_bound_value_is_ok(self):
        benchmarks = self._benchmarks(
            BENCH_columnar={
                "kernels": {"speedup": 5.0, "outcomes_identical": True},
                "sharded": {"single_shard_identical": True},
            }
        )
        statuses = {
            metric: status
            for metric, _, _, status in bench_report.evaluate_tracked(
                benchmarks
            )
        }
        assert statuses["BENCH_columnar:kernels.speedup"] == "ok"
        assert (
            statuses["BENCH_columnar:sharded.single_shard_identical"]
            == "ok"
        )


class TestMain:
    def _write(self, root: Path, stem: str, data: dict) -> None:
        (root / f"{stem}.json").write_text(json.dumps(data))

    def _healthy_root(self, tmp_path: Path) -> Path:
        self._write(
            tmp_path,
            "BENCH_planner",
            {
                "fig4 default": {
                    "plans_identical": True,
                    "covers_computed": {"reduction": 3.0},
                }
            },
        )
        self._write(
            tmp_path,
            "BENCH_sharedsort",
            {
                "scaled 24x96": {
                    "builder": {
                        "plans_identical": True,
                        "savings_evaluated": {"reduction": 10.0},
                    },
                    "cross_round": {"answers_identical": True},
                }
            },
        )
        self._write(
            tmp_path,
            "BENCH_budgets",
            {
                "policies": {
                    "throttled": {"revenue_loss": 0.0},
                    "naive": {"revenue_loss": 0.3},
                }
            },
        )
        self._write(
            tmp_path, "BENCH_changefeed", {"per_event_seconds": 1e-6}
        )
        self._write(
            tmp_path,
            "BENCH_serving",
            {
                "gates": {
                    "exec_cache_work_ratio": 0.3,
                    "sort_cache_work_ratio": 0.3,
                },
                "columnar_serving": {
                    "outcomes_identical": True,
                    "speedup_per_query": 5.0,
                },
            },
        )
        self._write(
            tmp_path,
            "BENCH_columnar",
            {
                "kernels": {"speedup": 4.0, "outcomes_identical": True},
                "matching": {
                    "kernel_speedup": 10.0,
                    "outcomes_identical": True,
                },
                "sharded": {"single_shard_identical": True},
            },
        )
        return tmp_path

    def test_healthy_root_passes_check(self, tmp_path, capsys):
        root = self._healthy_root(tmp_path)
        assert bench_report.main(["--root", str(root), "--check"]) == 0
        assert "17/17 tracked ok" in capsys.readouterr().out
        assert (root / "bench_tables.txt").exists()

    def test_output_is_byte_stable(self, tmp_path):
        root = self._healthy_root(tmp_path)
        bench_report.main(["--root", str(root)])
        first = (root / "bench_tables.txt").read_bytes()
        bench_report.main(["--root", str(root)])
        assert (root / "bench_tables.txt").read_bytes() == first

    def test_regression_fails_check_but_not_plain_run(
        self, tmp_path, capsys
    ):
        root = self._healthy_root(tmp_path)
        self._write(
            root,
            "BENCH_columnar",
            {
                "kernels": {"speedup": 1.0, "outcomes_identical": True},
                "matching": {
                    "kernel_speedup": 10.0,
                    "outcomes_identical": True,
                },
                "sharded": {"single_shard_identical": True},
            },
        )
        assert bench_report.main(["--root", str(root)]) == 0
        assert "REGRESSED" in capsys.readouterr().out
        assert bench_report.main(["--root", str(root), "--check"]) == 1

    def test_missing_artifact_fails_check(self, tmp_path):
        root = self._healthy_root(tmp_path)
        (root / "BENCH_columnar.json").unlink()
        assert bench_report.main(["--root", str(root), "--check"]) == 1

    def test_empty_root_errors(self, tmp_path, capsys):
        assert bench_report.main(["--root", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_repo_root_artifacts_are_currently_healthy(self):
        """The committed BENCH_*.json must satisfy their own gates."""
        benchmarks = bench_report.load_benchmarks(bench_report.REPO_ROOT)
        rows = bench_report.evaluate_tracked(benchmarks)
        unhealthy = [row for row in rows if row[3] != "ok"]
        assert not unhealthy, f"tracked regressions: {unhealthy}"

    def test_committed_report_matches_artifacts(self):
        """bench_tables.txt is derived state; it must not drift."""
        benchmarks = bench_report.load_benchmarks(bench_report.REPO_ROOT)
        expected = bench_report.render(benchmarks) + "\n"
        committed = (
            bench_report.REPO_ROOT / bench_report.REPORT_NAME
        ).read_text()
        assert committed == expected
