"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.advertiser import Advertiser
from repro.core.ctr import SeparableCTRModel
from repro.core.topk import ScoredAdvertiser, TopKList


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random source for tests."""
    return random.Random(0xC0FFEE)


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

scores = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)

advertiser_ids = st.integers(min_value=0, max_value=50)


@st.composite
def scored_advertisers(draw) -> ScoredAdvertiser:
    """A single scored advertiser."""
    return ScoredAdvertiser(draw(scores), draw(advertiser_ids))


@st.composite
def topk_lists(draw, max_k: int = 6) -> TopKList:
    """A canonical TopKList with shared-universe advertiser ids."""
    k = draw(st.integers(min_value=1, max_value=max_k))
    entries = draw(st.lists(scored_advertisers(), max_size=12))
    return TopKList(k, entries)


@st.composite
def query_families(draw, max_queries: int = 5, max_vars: int = 8):
    """A family of variable sets for plan instances.

    Returns ``(sets, rates)`` where ``sets`` maps query names to variable
    lists (each with >= 2 variables) and ``rates`` maps names to search
    rates in (0, 1].
    """
    num_vars = draw(st.integers(min_value=2, max_value=max_vars))
    universe = [f"x{i}" for i in range(num_vars)]
    num_queries = draw(st.integers(min_value=1, max_value=max_queries))
    sets = {}
    rates = {}
    for index in range(num_queries):
        members = draw(
            st.lists(
                st.sampled_from(universe),
                min_size=2,
                max_size=num_vars,
                unique=True,
            )
        )
        name = f"q{index}"
        sets[name] = members
        rates[name] = draw(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
        )
    return sets, rates


@st.composite
def throttle_ads(draw, max_ads: int = 6):
    """Outstanding-ad lists for throttle problems."""
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=60),
                st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
            ),
            max_size=max_ads,
        )
    )


@pytest.fixture
def simple_market():
    """A small deterministic advertiser population over three phrases."""
    phrases = ("boots", "heels", "sandals")
    advertisers = [
        Advertiser(0, bid=1.5, ctr_factor=1.2, phrases=frozenset(phrases)),
        Advertiser(1, bid=1.2, ctr_factor=1.0, phrases=frozenset({"boots"})),
        Advertiser(
            2, bid=1.8, ctr_factor=0.9, phrases=frozenset({"heels", "sandals"})
        ),
        Advertiser(
            3, bid=0.9, ctr_factor=1.4, phrases=frozenset({"boots", "heels"})
        ),
        Advertiser(4, bid=2.0, ctr_factor=0.7, phrases=frozenset({"sandals"})),
    ]
    model = SeparableCTRModel(
        {a.advertiser_id: a.ctr_factor for a in advertisers}, [0.3, 0.2]
    )
    return advertisers, model, phrases
