"""Tests for auction specs, allocations, and outcomes."""

from __future__ import annotations

import pytest

from repro.core.advertiser import Advertiser
from repro.core.auction import Allocation, AuctionOutcome, AuctionSpec
from repro.core.ctr import SeparableCTRModel
from repro.errors import InvalidAuctionError


@pytest.fixture
def model():
    return SeparableCTRModel({0: 1.0, 1: 1.2, 2: 0.8}, [0.4, 0.2])


@pytest.fixture
def spec(model):
    advertisers = [Advertiser(i, bid=1.0 + i) for i in range(3)]
    return AuctionSpec("music", advertisers, model)


class TestAuctionSpec:
    def test_slots_default_to_model(self, spec):
        assert spec.num_slots == 2

    def test_explicit_fewer_slots(self, model):
        spec = AuctionSpec("p", [Advertiser(0, 1.0)], model, num_slots=1)
        assert spec.num_slots == 1

    def test_rejects_more_slots_than_model(self, model):
        with pytest.raises(InvalidAuctionError):
            AuctionSpec("p", [Advertiser(0, 1.0)], model, num_slots=3)

    def test_rejects_zero_slots(self, model):
        with pytest.raises(InvalidAuctionError):
            AuctionSpec("p", [], model, num_slots=0)

    def test_rejects_duplicate_ids(self, model):
        with pytest.raises(InvalidAuctionError):
            AuctionSpec("p", [Advertiser(0, 1.0), Advertiser(0, 2.0)], model)

    def test_advertiser_by_id(self, spec):
        assert spec.advertiser_by_id(1).bid == 2.0
        with pytest.raises(InvalidAuctionError):
            spec.advertiser_by_id(42)


class TestAllocation:
    def test_winners_skips_empty_slots(self):
        allocation = Allocation((3, None, 1), 1.0)
        assert allocation.winners() == (3, 1)

    def test_slot_of(self):
        allocation = Allocation((3, None, 1), 1.0)
        assert allocation.slot_of(1) == 2
        assert allocation.slot_of(3) == 0
        assert allocation.slot_of(9) is None

    def test_len(self):
        assert len(Allocation((None, None), 0.0)) == 2


class TestAuctionOutcome:
    def test_price_above_bid_rejected(self, spec):
        allocation = Allocation((0, 1), 1.0)
        with pytest.raises(InvalidAuctionError):
            AuctionOutcome(spec, allocation, {0: 5.0})

    def test_price_of(self, spec):
        allocation = Allocation((0, 1), 1.0)
        outcome = AuctionOutcome(spec, allocation, {0: 0.5, 1: 1.0})
        assert outcome.price_of(0) == 0.5
        with pytest.raises(InvalidAuctionError):
            outcome.price_of(2)

    def test_expected_revenue(self, spec, model):
        allocation = Allocation((0, 1), 1.0)
        outcome = AuctionOutcome(spec, allocation, {0: 1.0, 1: 2.0})
        expected = model.ctr(0, 0) * 1.0 + model.ctr(1, 1) * 2.0
        assert outcome.expected_revenue() == pytest.approx(expected)

    def test_expected_revenue_empty_slots(self, spec):
        allocation = Allocation((None, None), 0.0)
        outcome = AuctionOutcome(spec, allocation, {})
        assert outcome.expected_revenue() == 0.0
