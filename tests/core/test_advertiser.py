"""Unit tests for advertisers and bid phrases."""

from __future__ import annotations

import pytest

from repro.core.advertiser import Advertiser, BidPhrase
from repro.errors import InvalidAuctionError


class TestBidPhrase:
    def test_basic_construction(self):
        phrase = BidPhrase("hiking boots", 0.4)
        assert phrase.text == "hiking boots"
        assert phrase.search_rate == 0.4

    def test_default_search_rate_is_certain(self):
        assert BidPhrase("music").search_rate == 1.0

    def test_empty_text_rejected(self):
        with pytest.raises(InvalidAuctionError):
            BidPhrase("")

    @pytest.mark.parametrize("rate", [-0.1, 1.01, 2.0])
    def test_search_rate_out_of_range_rejected(self, rate):
        with pytest.raises(InvalidAuctionError):
            BidPhrase("music", rate)

    def test_with_search_rate_returns_copy(self):
        phrase = BidPhrase("music", 0.5)
        updated = phrase.with_search_rate(0.9)
        assert updated.search_rate == 0.9
        assert phrase.search_rate == 0.5
        assert updated.text == "music"

    def test_ordering_by_text(self):
        assert BidPhrase("a") < BidPhrase("b")

    def test_hashable_and_usable_in_sets(self):
        assert len({BidPhrase("a", 0.5), BidPhrase("a", 0.5)}) == 1


class TestAdvertiser:
    def test_basic_construction(self):
        advertiser = Advertiser(3, bid=1.5, ctr_factor=1.2)
        assert advertiser.advertiser_id == 3
        assert advertiser.bid == 1.5
        assert advertiser.ctr_factor == 1.2
        assert advertiser.daily_budget == float("inf")

    def test_negative_id_rejected(self):
        with pytest.raises(InvalidAuctionError):
            Advertiser(-1, bid=1.0)

    def test_negative_bid_rejected(self):
        with pytest.raises(InvalidAuctionError):
            Advertiser(0, bid=-0.5)

    def test_negative_ctr_factor_rejected(self):
        with pytest.raises(InvalidAuctionError):
            Advertiser(0, bid=1.0, ctr_factor=-0.1)

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidAuctionError):
            Advertiser(0, bid=1.0, daily_budget=-1.0)

    def test_negative_phrase_factor_rejected(self):
        with pytest.raises(InvalidAuctionError):
            Advertiser(0, bid=1.0, phrase_ctr_factors={"music": -0.2})

    def test_score_is_bid_times_factor(self):
        advertiser = Advertiser(0, bid=2.0, ctr_factor=1.3)
        assert advertiser.score() == pytest.approx(2.6)

    def test_score_uses_phrase_override(self):
        advertiser = Advertiser(
            0, bid=2.0, ctr_factor=1.0, phrase_ctr_factors={"books": 1.5}
        )
        assert advertiser.score("books") == pytest.approx(3.0)
        assert advertiser.score("dvds") == pytest.approx(2.0)

    def test_ctr_factor_for_falls_back(self):
        advertiser = Advertiser(
            0, bid=1.0, ctr_factor=0.8, phrase_ctr_factors={"a": 1.1}
        )
        assert advertiser.ctr_factor_for("a") == 1.1
        assert advertiser.ctr_factor_for("b") == 0.8

    def test_interested_in(self):
        advertiser = Advertiser(0, bid=1.0, phrases=frozenset({"music"}))
        assert advertiser.interested_in("music")
        assert not advertiser.interested_in("books")

    def test_with_bid_preserves_identity(self):
        advertiser = Advertiser(7, bid=1.0, phrases=frozenset({"music"}))
        rebid = advertiser.with_bid(2.5)
        assert rebid.bid == 2.5
        assert rebid == advertiser  # identity-based equality
        assert hash(rebid) == hash(advertiser)
        assert rebid.phrases == advertiser.phrases

    def test_with_phrases(self):
        advertiser = Advertiser(1, bid=1.0)
        updated = advertiser.with_phrases(["a", "b"])
        assert updated.phrases == frozenset({"a", "b"})

    def test_equality_is_by_id_only(self):
        assert Advertiser(1, bid=1.0) == Advertiser(1, bid=9.0)
        assert Advertiser(1, bid=1.0) != Advertiser(2, bid=1.0)

    def test_equality_against_other_types(self):
        assert Advertiser(1, bid=1.0) != "advertiser"

    def test_set_semantics_by_id(self):
        population = {Advertiser(1, bid=1.0), Advertiser(1, bid=2.0)}
        assert len(population) == 1
