"""Section V columnar matching vs the object oracle.

:func:`determine_winners_nonseparable_columnar` promises *exactness*,
not approximation: the vectorized weight matrix, the per-slot
``argpartition`` prune, and the Hungarian call compose to the same
allocation -- winners and ``expected_value`` bit for bit -- as the
object-path :func:`determine_winners_nonseparable`.  These tests make
the object path the oracle across randomized, tie-prone markets and pin
the pieces (weight identity, prune-set identity, the ``k * k`` gate).
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.advertiser import Advertiser
from repro.core.auction import Allocation, AuctionSpec
from repro.core.ctr import MatrixCTRModel, SeparableCTRModel
from repro.core.winner_determination import (
    determine_winners_nonseparable,
    determine_winners_nonseparable_columnar,
    nonseparable_weight_matrix,
    prune_candidates,
)


def _random_spec(seed: int) -> AuctionSpec:
    """A tie-prone non-separable market: few distinct bid/CTR values."""
    rng = random.Random(seed)
    n = rng.randint(1, 40)
    k = rng.randint(1, 4)
    ads = [
        Advertiser(i, rng.choice([0.5, 1.0, 1.5, 2.0]), phrases=frozenset({"p"}))
        for i in range(n)
    ]
    rows = {
        i: tuple(rng.choice([0.1, 0.2, 0.4, 0.8]) for _ in range(k))
        for i in range(n)
    }
    return AuctionSpec("p", ads, MatrixCTRModel(rows), num_slots=k)


class TestColumnarMatchesObjectOracle:
    @pytest.mark.parametrize("seed", range(60))
    def test_randomized_differential(self, seed):
        spec = _random_spec(seed)
        oracle = determine_winners_nonseparable(spec)
        columnar = determine_winners_nonseparable_columnar(spec)
        assert columnar.slot_to_advertiser == oracle.slot_to_advertiser
        assert columnar.expected_value == oracle.expected_value  # bitwise

    @pytest.mark.parametrize("seed", range(0, 60, 6))
    def test_unpruned_parity(self, seed):
        spec = _random_spec(seed)
        oracle = determine_winners_nonseparable(spec, prune=False)
        columnar = determine_winners_nonseparable_columnar(spec, prune=False)
        assert columnar == oracle

    @pytest.mark.parametrize("seed", range(0, 60, 6))
    def test_precomputed_matrix_path(self, seed):
        # Serving over static bids/CTRs reuses one prebuilt matrix; the
        # answer must be the same object-path allocation.
        spec = _random_spec(seed)
        precomputed = nonseparable_weight_matrix(spec)
        assert determine_winners_nonseparable_columnar(
            spec, precomputed=precomputed
        ) == determine_winners_nonseparable(spec)

    def test_generic_ctr_model_fallback(self):
        # Any non-matrix model goes through the model.ctr loop; a
        # separable model routed down the non-separable path is the
        # simplest such case.
        ads = [
            Advertiser(i, 1.0 + i / 4, phrases=frozenset({"p"}))
            for i in range(12)
        ]
        model = SeparableCTRModel(
            slot_factors=[0.3, 0.2, 0.1],
            advertiser_factors={a.advertiser_id: 0.5 + (a.advertiser_id % 3) / 4 for a in ads},
        )
        spec = AuctionSpec("p", ads, model, num_slots=3)
        assert determine_winners_nonseparable_columnar(
            spec
        ) == determine_winners_nonseparable(spec)


class TestPieces:
    def test_weight_matrix_is_ieee_identical_to_object_products(self):
        spec = _random_spec(5)
        ids, weights = nonseparable_weight_matrix(spec)
        model = spec.ctr_model
        by_id = {a.advertiser_id: a for a in spec.advertisers}
        assert ids.tolist() == [a.advertiser_id for a in spec.advertisers]
        for row, advertiser_id in enumerate(ids):
            a = by_id[int(advertiser_id)]
            for j in range(spec.num_slots):
                assert weights[row, j] == model.ctr(a.advertiser_id, j) * a.bid

    def test_prune_union_equals_object_prune(self):
        for seed in range(0, 30, 3):
            spec = _random_spec(seed)
            k = spec.num_slots
            if len(spec.advertisers) <= k * k:
                continue
            object_kept = [
                a.advertiser_id
                for a in prune_candidates(spec.advertisers, spec.ctr_model, k)
            ]
            ids, weights = nonseparable_weight_matrix(spec)
            from repro.core.winner_determination import _prune_candidate_rows

            columnar_kept = [
                int(ids[row]) for row in _prune_candidate_rows(ids, weights, k)
            ]
            assert columnar_kept == object_kept

    def test_small_population_skips_prune(self):
        # n <= k*k: the gate leaves the graph whole (object semantics),
        # so every advertiser stays a Hungarian candidate.
        ads = [Advertiser(i, 2.0, phrases=frozenset({"p"})) for i in range(4)]
        rows = {i: (0.4, 0.2) for i in range(4)}
        spec = AuctionSpec("p", ads, MatrixCTRModel(rows), num_slots=2)
        assert determine_winners_nonseparable_columnar(
            spec
        ) == determine_winners_nonseparable(spec)

    def test_empty_market_yields_empty_allocation(self):
        spec = AuctionSpec(
            "p", [], MatrixCTRModel({0: (0.1, 0.2, 0.3)}), num_slots=3
        )
        assert determine_winners_nonseparable_columnar(spec) == Allocation(
            (None, None, None), 0.0
        )
        assert determine_winners_nonseparable_columnar(
            spec
        ) == determine_winners_nonseparable(spec)
