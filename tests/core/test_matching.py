"""Unit and property tests for the Hungarian algorithm."""

from __future__ import annotations

from itertools import permutations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import hungarian_max_weight, hungarian_min_cost
from repro.errors import InvalidAuctionError


def brute_force_min_cost(cost):
    n = len(cost)
    best = None
    for perm in permutations(range(n)):
        total = sum(cost[i][perm[i]] for i in range(n))
        if best is None or total < best:
            best = total
    return best


def brute_force_max_weight(weights):
    m, k = len(weights), len(weights[0])
    best = 0.0
    rows = list(range(m))
    for r in range(0, min(m, k) + 1):
        for chosen in permutations(rows, r):
            for slots in permutations(range(k), r):
                total = sum(
                    weights[i][j] for i, j in zip(chosen, slots)
                )
                if total > best:
                    best = total
    return best


class TestHungarianMinCost:
    def test_identity_matrix(self):
        cost = [[0, 1], [1, 0]]
        assert hungarian_min_cost(cost) == [0, 1]

    def test_forced_swap(self):
        cost = [[10, 1], [1, 10]]
        assert hungarian_min_cost(cost) == [1, 0]

    def test_empty_rejected(self):
        with pytest.raises(InvalidAuctionError):
            hungarian_min_cost([])

    def test_non_square_rejected(self):
        with pytest.raises(InvalidAuctionError):
            hungarian_min_cost([[1, 2], [3]])

    def test_known_3x3(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        assignment = hungarian_min_cost(cost)
        total = sum(cost[i][assignment[i]] for i in range(3))
        assert total == brute_force_min_cost(cost) == 5

    @settings(deadline=None, max_examples=60)
    @given(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda n: st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    def test_matches_brute_force(self, cost):
        assignment = hungarian_min_cost(cost)
        assert sorted(assignment) == list(range(len(cost)))
        total = sum(cost[i][assignment[i]] for i in range(len(cost)))
        assert total == pytest.approx(brute_force_min_cost(cost), abs=1e-6)


class TestHungarianMaxWeight:
    def test_square(self):
        weights = [[3, 1], [1, 3]]
        assignment, total = hungarian_max_weight(weights)
        assert assignment == [0, 1]
        assert total == 6

    def test_more_rows_than_columns(self):
        weights = [[1.0], [5.0], [2.0]]
        assignment, total = hungarian_max_weight(weights)
        assert total == 5.0
        assert assignment[1] == 0
        assert assignment[0] is None and assignment[2] is None

    def test_more_columns_than_rows(self):
        weights = [[1.0, 9.0, 2.0]]
        assignment, total = hungarian_max_weight(weights)
        assert assignment == [1]
        assert total == 9.0

    def test_zero_weights_left_unassigned(self):
        weights = [[0.0, 0.0], [0.0, 0.0]]
        assignment, total = hungarian_max_weight(weights)
        assert total == 0.0
        assert assignment == [None, None]

    def test_empty_rejected(self):
        with pytest.raises(InvalidAuctionError):
            hungarian_max_weight([])

    def test_ragged_rejected(self):
        with pytest.raises(InvalidAuctionError):
            hungarian_max_weight([[1.0], [1.0, 2.0]])

    @settings(deadline=None, max_examples=60)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=3),
        ).flatmap(
            lambda mk: st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                    min_size=mk[1],
                    max_size=mk[1],
                ),
                min_size=mk[0],
                max_size=mk[0],
            )
        )
    )
    def test_matches_brute_force(self, weights):
        assignment, total = hungarian_max_weight(weights)
        # Assignment is a partial injection.
        used = [j for j in assignment if j is not None]
        assert len(used) == len(set(used))
        recomputed = sum(
            weights[i][j] for i, j in enumerate(assignment) if j is not None
        )
        assert total == pytest.approx(recomputed)
        assert total == pytest.approx(brute_force_max_weight(weights), abs=1e-6)
