"""Unit tests for the struct-of-arrays advertiser store.

The columnar layout's contract is *transparency*: every array-side read
must agree with the object it transposed, every kernel must reproduce
the object algorithm byte for byte (tie-breaks included), and every
mutation routed through the store must be instantly visible through the
zero-copy views.  These tests pin each piece in isolation; the
engine-level layout differential (``tests/engine``) pins the composite.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.core.advertiser import Advertiser
from repro.core.columnar import (
    UNBUDGETED_CENTS,
    AdvertiserView,
    ArrayScoreMap,
    ColumnarStore,
    columnar_top_k,
)
from repro.core.money import dollars_to_cents
from repro.core.topk import top_k_scan
from repro.errors import InvalidAuctionError
from repro.instrument import MetricsCollector, names


def _population():
    return [
        Advertiser(3, bid=1.25, ctr_factor=0.8, daily_budget=10.0,
                   phrases=frozenset({"shoes", "boots"})),
        Advertiser(1, bid=2.00, ctr_factor=1.1, daily_budget=float("inf"),
                   phrases=frozenset({"shoes"})),
        Advertiser(7, bid=0.40, ctr_factor=0.5, daily_budget=3.5,
                   phrases=frozenset({"boots"}),
                   phrase_ctr_factors={"boots": 0.9}),
        Advertiser(4, bid=1.25, ctr_factor=0.8, daily_budget=2.0,
                   phrases=frozenset({"shoes", "sandals"})),
    ]


class TestColumns:
    def test_rows_sorted_by_id_and_values_transposed(self):
        advertisers = _population()
        store = ColumnarStore.from_advertisers(advertisers)
        assert list(store.ids) == [1, 3, 4, 7]
        by_id = {a.advertiser_id: a for a in advertisers}
        for row, advertiser_id in enumerate(store.ids):
            source = by_id[int(advertiser_id)]
            assert store.bids[row] == source.bid
            assert store.bid_cents[row] == dollars_to_cents(source.bid)
            assert store.ctr_factors[row] == source.ctr_factor
        assert store.budget_cents[store.row_of(1)] == UNBUDGETED_CENTS
        assert store.budget_cents[store.row_of(3)] == 1000

    def test_duplicate_id_rejected(self):
        with pytest.raises(InvalidAuctionError, match="duplicate"):
            ColumnarStore([Advertiser(1, bid=1.0), Advertiser(1, bid=2.0)])

    def test_rows_of_translates_and_rejects_unknown(self):
        store = ColumnarStore(_population())
        assert list(store.rows_of([1, 4, 7])) == [
            store.row_of(1), store.row_of(4), store.row_of(7)
        ]
        assert list(store.rows_of([])) == []
        with pytest.raises(InvalidAuctionError, match=r"\[5\]"):
            store.rows_of([1, 5])
        # An id above every stored id must not index out of bounds.
        with pytest.raises(InvalidAuctionError, match=r"\[99\]"):
            store.rows_of([99])


class TestPhraseMembership:
    def test_phrase_rows_and_masks(self):
        store = ColumnarStore(_population())
        shoes = [int(store.ids[r]) for r in store.phrase_rows("shoes")]
        assert shoes == [1, 3, 4]
        mask = store.membership("boots")
        assert [int(store.ids[r]) for r in np.flatnonzero(mask)] == [3, 7]
        bits = store.membership_bits("boots")
        assert np.array_equal(np.unpackbits(bits, count=store.size),
                              mask.astype(np.uint8))

    def test_phrase_ctr_applies_overrides(self):
        store = ColumnarStore(_population())
        rows = store.phrase_rows("boots")
        factors = store.phrase_ctr("boots")
        expected = {3: 0.8, 7: 0.9}  # 7 overrides boots to 0.9
        for position, row in enumerate(rows):
            assert factors[position] == expected[int(store.ids[row])]

    def test_phrase_ctr_rank_rows_orders_by_factor_then_id(self):
        store = ColumnarStore(_population())
        ranked = [int(store.ids[r])
                  for r in store.phrase_ctr_rank_rows("shoes")]
        # shoes factors: 1 -> 1.1, 3 -> 0.8, 4 -> 0.8 (tie broken by id)
        assert ranked == [1, 3, 4]

    def test_phrases_lists_live_phrases_sorted(self):
        store = ColumnarStore(_population())
        assert store.phrases() == ["boots", "sandals", "shoes"]


class TestAdvertiserView:
    def test_view_duck_types_the_object(self):
        advertisers = _population()
        store = ColumnarStore(advertisers)
        for source in advertisers:
            view = store.advertiser(source.advertiser_id)
            assert view.bid == source.bid
            assert view.ctr_factor == source.ctr_factor
            assert view.daily_budget == source.daily_budget
            assert view.phrases == source.phrases
            assert view.score() == source.score()
            for phrase in source.phrases:
                assert view.ctr_factor_for(phrase) == (
                    source.ctr_factor_for(phrase)
                )
                assert view.score(phrase) == source.score(phrase)
                assert view.interested_in(phrase)
            assert view == source and hash(view) == hash(source)
            assert view.materialize() == source

    def test_view_sees_store_mutations_instantly(self):
        store = ColumnarStore(_population())
        view = store.advertiser(3)
        store.set_bid(3, 9.99)
        assert view.bid == 9.99
        store.set_budget(3, 1.0)
        assert view.daily_budget == 1.0
        store.set_budget(3, float("inf"))
        assert view.daily_budget == float("inf")

    def test_view_of_departed_advertiser_raises(self):
        store = ColumnarStore(_population())
        view = store.advertiser(7)
        store.remove_advertiser(7)
        with pytest.raises(InvalidAuctionError, match="left the market"):
            _ = view.bid

    def test_views_are_ascending_and_zero_copy(self):
        store = ColumnarStore(_population())
        views = store.views()
        assert [v.advertiser_id for v in views] == [1, 3, 4, 7]
        assert all(isinstance(v, AdvertiserView) for v in views)


class TestMutations:
    def test_set_bid_updates_both_columns(self):
        store = ColumnarStore(_population())
        store.set_bid(4, 3.33)
        row = store.row_of(4)
        assert store.bids[row] == 3.33
        assert store.bid_cents[row] == 333
        with pytest.raises(InvalidAuctionError):
            store.set_bid(4, -1.0)

    def test_interest_churn_invalidates_phrase_caches(self):
        store = ColumnarStore(_population())
        before = [int(store.ids[r]) for r in store.phrase_rows("sandals")]
        assert before == [4]
        store.add_interest(1, "sandals")
        assert [int(store.ids[r])
                for r in store.phrase_rows("sandals")] == [1, 4]
        store.remove_interest(4, "sandals")
        assert [int(store.ids[r])
                for r in store.phrase_rows("sandals")] == [1]

    def test_absorb_syncs_columns_memberships_and_overrides(self):
        store = ColumnarStore(_population())
        mutated = store.advertiser(7).materialize().with_bid(5.0)
        store.absorb(mutated)
        assert store.bids[store.row_of(7)] == 5.0
        replacement = Advertiser(
            7, bid=5.0, ctr_factor=0.6, daily_budget=3.5,
            phrases=frozenset({"shoes"}),
        )
        store.absorb(replacement)
        assert 7 in [int(store.ids[r]) for r in store.phrase_rows("shoes")]
        assert 7 not in [
            int(store.ids[r]) for r in store.phrase_rows("boots")
        ]
        # The boots override died with the membership.
        assert store.advertiser(7).phrase_ctr_factors == {}

    def test_absorb_of_unknown_advertiser_adds_a_row(self):
        store = ColumnarStore(_population())
        store.absorb(Advertiser(2, bid=1.0, phrases=frozenset({"shoes"})))
        assert list(store.ids) == [1, 2, 3, 4, 7]
        assert 2 in [int(store.ids[r]) for r in store.phrase_rows("shoes")]

    def test_add_remove_advertiser_renumbers(self):
        store = ColumnarStore(_population())
        store.add_advertiser(Advertiser(0, bid=0.5,
                                        phrases=frozenset({"boots"})))
        assert list(store.ids) == [0, 1, 3, 4, 7]
        with pytest.raises(InvalidAuctionError, match="duplicate"):
            store.add_advertiser(Advertiser(0, bid=0.5))
        store.remove_advertiser(3)
        assert list(store.ids) == [0, 1, 4, 7]
        assert [int(store.ids[r])
                for r in store.phrase_rows("boots")] == [0, 7]


class TestArrayScoreMap:
    def test_mapping_protocol_matches_dict(self):
        ids = np.array([2, 5, 9], dtype=np.int64)
        values = np.array([0.5, 1.5, 2.5], dtype=np.float64)
        mapping = ArrayScoreMap(ids, values)
        expected = {2: 0.5, 5: 1.5, 9: 2.5}
        assert dict(mapping) == expected
        assert dict(mapping.items()) == expected
        assert len(mapping) == 3
        assert mapping[5] == 1.5
        assert mapping.get(5) == 1.5
        assert mapping.get(6, -1.0) == -1.0
        assert 9 in mapping and 10 not in mapping and "x" not in mapping
        with pytest.raises(KeyError):
            mapping[10]
        with pytest.raises(KeyError):
            mapping[1]  # below the smallest id

    def test_parallel_length_enforced(self):
        with pytest.raises(InvalidAuctionError, match="parallel"):
            ArrayScoreMap(np.array([1]), np.array([1.0, 2.0]))


class TestColumnarTopK:
    def _assert_matches_scan(self, k, scores, ids):
        vectorized = columnar_top_k(
            k,
            np.asarray(scores, dtype=np.float64),
            np.asarray(ids, dtype=np.int64),
        )
        reference = top_k_scan(k, zip(scores, ids))
        assert vectorized.entries == reference.entries

    def test_matches_heap_scan_on_random_draws(self):
        rng = np.random.default_rng(7)
        for trial in range(25):
            n = int(rng.integers(1, 40))
            ids = rng.permutation(1000)[:n].astype(np.int64)
            scores = rng.uniform(0.0, 5.0, size=n)
            self._assert_matches_scan(int(rng.integers(1, 8)), scores, ids)

    def test_boundary_ties_break_by_id_exactly(self):
        # Five rows tie at the argpartition boundary: the winner set
        # depends entirely on the id tie-break.
        scores = [2.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        ids = [50, 40, 10, 30, 20, 5]
        self._assert_matches_scan(3, scores, ids)

    def test_all_scores_equal(self):
        self._assert_matches_scan(2, [1.0] * 6, [6, 4, 2, 0, 1, 3])

    def test_short_input_and_empty(self):
        self._assert_matches_scan(5, [1.0, 2.0], [1, 0])
        empty = columnar_top_k(
            3, np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        )
        assert empty.entries == ()

    def test_k_must_be_positive(self):
        with pytest.raises(InvalidAuctionError, match="positive"):
            columnar_top_k(0, np.zeros(1), np.zeros(1, dtype=np.int64))

    def test_counts_like_the_object_scan(self):
        collector = MetricsCollector()
        columnar_top_k(
            2,
            np.array([1.0, 2.0, 3.0]),
            np.array([1, 2, 3], dtype=np.int64),
            collector,
        )
        assert collector.counter(names.TOPK_SCANS) == 1
        assert collector.counter(names.TOPK_SCAN_ENTRIES) == 3
