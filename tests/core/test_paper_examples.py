"""E1: the paper's Figures 1-3 worked example, end to end."""

from __future__ import annotations

import pytest

from repro.core import determine_winners, GeneralizedSecondPrice
from repro.core.ctr import is_separable, separable_factors
from repro.workloads.scenarios import paper_example_auction


class TestFigures1To3:
    def test_ctr_matrix_matches_figure_1(self):
        spec = paper_example_auction()
        expected = {
            (0, 0): 0.36,
            (0, 1): 0.24,
            (1, 0): 0.33,
            (1, 1): 0.22,
            (2, 0): 0.39,
            (2, 1): 0.26,
        }
        for (advertiser, slot), ctr in expected.items():
            assert spec.ctr_model.ctr(advertiser, slot) == pytest.approx(ctr)

    def test_factors_match_figure_2(self):
        spec = paper_example_auction()
        assert spec.ctr_model.advertiser_factor(0) == pytest.approx(1.2)
        assert spec.ctr_model.advertiser_factor(1) == pytest.approx(1.1)
        assert spec.ctr_model.advertiser_factor(2) == pytest.approx(1.3)
        assert spec.ctr_model.slot_factors == (0.3, 0.2)

    def test_matrix_is_separable_and_recoverable(self):
        spec = paper_example_auction()
        matrix = spec.ctr_model.as_matrix([0, 1, 2])
        assert is_separable(matrix)
        recovered = separable_factors(matrix)
        for advertiser in range(3):
            for slot in range(2):
                assert recovered.ctr(advertiser, slot) == pytest.approx(
                    matrix.ctr(advertiser, slot)
                )

    def test_allocation_matches_text(self):
        """Winner determination assigns slot 1 to A and slot 2 to B."""
        allocation = determine_winners(paper_example_auction())
        assert allocation.slot_to_advertiser == (0, 1)

    def test_scores_explain_the_allocation(self):
        spec = paper_example_auction()
        scores = {
            a.advertiser_id: a.bid
            * spec.ctr_model.advertiser_factor(a.advertiser_id)
            for a in spec.advertisers
        }
        assert scores[0] > scores[1] > scores[2]

    def test_gsp_prices_are_valid(self):
        spec = paper_example_auction()
        outcome = GeneralizedSecondPrice().run(spec)
        for advertiser_id, price in outcome.prices.items():
            assert 0.0 <= price <= spec.advertiser_by_id(advertiser_id).bid
        # A pays B's score over A's factor: 1.1 / 1.2.
        assert outcome.prices[0] == pytest.approx(1.1 / 1.2)
        # B pays C's score over B's factor: 1.04 / 1.1.
        assert outcome.prices[1] == pytest.approx(1.04 / 1.1)
