"""Unit and property tests for TopKList and the top-k merge operator.

The property tests check the algebraic axioms A1-A4 that Section II-C
abstracts from this operator -- associativity, identity, idempotence,
and commutativity -- exactly (no tolerance), which the canonical
tie-breaking makes possible.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.topk import ScoredAdvertiser, TopKList, top_k_merge, top_k_scan
from repro.errors import InvalidAuctionError
from tests.conftest import scored_advertisers, topk_lists


def entries(*pairs):
    return [ScoredAdvertiser(score, advertiser) for score, advertiser in pairs]


class TestScoredAdvertiser:
    def test_beats_by_score(self):
        assert ScoredAdvertiser(2.0, 5).beats(ScoredAdvertiser(1.0, 1))

    def test_ties_broken_by_lower_id(self):
        assert ScoredAdvertiser(1.0, 1).beats(ScoredAdvertiser(1.0, 2))
        assert not ScoredAdvertiser(1.0, 2).beats(ScoredAdvertiser(1.0, 1))


class TestTopKList:
    def test_requires_positive_k(self):
        with pytest.raises(InvalidAuctionError):
            TopKList(0)

    def test_orders_best_first(self):
        ranking = TopKList(3, entries((1.0, 1), (3.0, 2), (2.0, 3)))
        assert ranking.advertiser_ids() == (2, 3, 1)

    def test_truncates_to_k(self):
        ranking = TopKList(2, entries((1.0, 1), (3.0, 2), (2.0, 3)))
        assert ranking.advertiser_ids() == (2, 3)

    def test_dedups_by_advertiser_keeping_best(self):
        ranking = TopKList(3, entries((1.0, 7), (4.0, 7), (2.0, 1)))
        assert ranking.advertiser_ids() == (7, 1)
        assert ranking[0].score == 4.0

    def test_accepts_tuples(self):
        ranking = TopKList(2, [(1.5, 3), (2.5, 4)])
        assert ranking.advertiser_ids() == (4, 3)

    def test_threshold_not_full(self):
        assert TopKList(3, entries((1.0, 1))).threshold() == float("-inf")

    def test_threshold_full(self):
        ranking = TopKList(2, entries((3.0, 1), (1.0, 2), (2.0, 3)))
        assert ranking.threshold() == 2.0

    def test_insert_returns_new_list(self):
        ranking = TopKList(2, entries((1.0, 1)))
        bigger = ranking.insert((5.0, 2))
        assert bigger.advertiser_ids() == (2, 1)
        assert ranking.advertiser_ids() == (1,)

    def test_equality_and_hash(self):
        a = TopKList(2, entries((1.0, 1), (2.0, 2)))
        b = TopKList(2, entries((2.0, 2), (1.0, 1)))
        assert a == b
        assert hash(a) == hash(b)
        assert a != TopKList(3, entries((1.0, 1), (2.0, 2)))

    def test_iteration_and_indexing(self):
        ranking = TopKList(2, entries((1.0, 1), (2.0, 2)))
        assert [e.advertiser_id for e in ranking] == [2, 1]
        assert ranking[0].advertiser_id == 2

    def test_repr_mentions_entries(self):
        assert "2:3" in repr(TopKList(1, entries((3.0, 2))))


class TestTopKMerge:
    def test_merges_and_truncates(self):
        left = TopKList(2, entries((5.0, 1), (1.0, 2)))
        right = TopKList(2, entries((4.0, 3), (3.0, 4)))
        assert top_k_merge(left, right).advertiser_ids() == (1, 3)

    def test_rejects_mismatched_k(self):
        with pytest.raises(InvalidAuctionError):
            top_k_merge(TopKList(2), TopKList(3))

    def test_merge_dedups_shared_advertisers(self):
        left = TopKList(3, entries((5.0, 1), (1.0, 2)))
        right = TopKList(3, entries((5.0, 1), (2.0, 3)))
        merged = top_k_merge(left, right)
        assert merged.advertiser_ids() == (1, 3, 2)

    @given(topk_lists(), topk_lists())
    def test_commutativity(self, a, b):
        a = TopKList(4, a.entries)
        b = TopKList(4, b.entries)
        assert top_k_merge(a, b) == top_k_merge(b, a)

    @given(topk_lists(), topk_lists(), topk_lists())
    def test_associativity(self, a, b, c):
        a, b, c = (TopKList(4, x.entries) for x in (a, b, c))
        left = top_k_merge(top_k_merge(a, b), c)
        right = top_k_merge(a, top_k_merge(b, c))
        assert left == right

    @given(topk_lists())
    def test_idempotence(self, a):
        assert top_k_merge(a, a) == a

    @given(topk_lists())
    def test_identity(self, a):
        empty = TopKList.empty(a.k)
        assert top_k_merge(a, empty) == a
        assert top_k_merge(empty, a) == a

    @given(topk_lists(), topk_lists())
    def test_merge_equals_rebuild(self, a, b):
        """Merging equals constructing from the union of entries."""
        a = TopKList(4, a.entries)
        b = TopKList(4, b.entries)
        assert top_k_merge(a, b) == TopKList(4, (*a.entries, *b.entries))


class TestTopKScan:
    def test_matches_sorted_prefix(self):
        data = [(3.0, 1), (1.0, 2), (2.0, 3), (5.0, 4)]
        assert top_k_scan(2, data).advertiser_ids() == (4, 1)

    def test_handles_short_input(self):
        assert top_k_scan(5, [(1.0, 1)]).advertiser_ids() == (1,)

    def test_empty_input(self):
        assert len(top_k_scan(3, [])) == 0

    @given(
        st.lists(scored_advertisers(), max_size=30),
        st.integers(min_value=1, max_value=6),
    )
    def test_scan_equals_full_sort(self, data, k):
        via_scan = top_k_scan(k, data)
        via_sort = TopKList(k, data)
        assert via_scan == via_sort

    def test_all_duplicate_stream_keeps_best_score(self):
        """Regression: a stream that is one id repeated n times.

        An earlier implementation re-heapified on every repeated id,
        degrading to O(n*k) on exactly this stream; the pre-pass
        resolves duplicates to their best score in O(n) and must keep
        only a single entry.
        """
        stream = [(float(i % 7), 42) for i in range(5_000)]
        result = top_k_scan(3, stream)
        assert result.entries == (ScoredAdvertiser(6.0, 42),)

    def test_duplicates_across_many_ids_keep_per_id_best(self):
        stream = [
            (1.0, 1), (9.0, 2), (3.0, 1), (2.0, 2), (3.0, 3), (0.5, 3)
        ]
        result = top_k_scan(2, stream)
        assert result.entries == (
            ScoredAdvertiser(9.0, 2),
            ScoredAdvertiser(3.0, 1),
        )
