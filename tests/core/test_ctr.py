"""Unit tests for click-through-rate models."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.ctr import (
    MatrixCTRModel,
    SeparableCTRModel,
    is_separable,
    separable_factors,
)
from repro.errors import InvalidAuctionError


class TestSeparableCTRModel:
    def test_paper_figure_1_and_2(self):
        """The Figures 1/2 example: c x d reproduces every ctr_ij."""
        model = SeparableCTRModel({0: 1.2, 1: 1.1, 2: 1.3}, [0.3, 0.2])
        expected = {
            (0, 0): 0.36,
            (0, 1): 0.24,
            (1, 0): 0.33,
            (1, 1): 0.22,
            (2, 0): 0.39,
            (2, 1): 0.26,
        }
        for (advertiser, slot), value in expected.items():
            assert model.ctr(advertiser, slot) == pytest.approx(value)

    def test_num_slots(self):
        model = SeparableCTRModel({0: 1.0}, [0.5, 0.3, 0.1])
        assert model.num_slots == 3

    def test_requires_some_slot(self):
        with pytest.raises(InvalidAuctionError):
            SeparableCTRModel({0: 1.0}, [])

    def test_slot_factors_must_be_probabilities(self):
        with pytest.raises(InvalidAuctionError):
            SeparableCTRModel({0: 1.0}, [1.5])

    def test_slot_factors_must_be_non_increasing(self):
        with pytest.raises(InvalidAuctionError):
            SeparableCTRModel({0: 1.0}, [0.2, 0.3])

    def test_negative_advertiser_factor_rejected(self):
        with pytest.raises(InvalidAuctionError):
            SeparableCTRModel({0: -1.0}, [0.3])

    def test_unknown_advertiser_raises(self):
        model = SeparableCTRModel({0: 1.0}, [0.3])
        with pytest.raises(InvalidAuctionError):
            model.ctr(99, 0)
        with pytest.raises(InvalidAuctionError):
            model.advertiser_factor(99)

    def test_slot_out_of_range_raises(self):
        model = SeparableCTRModel({0: 1.0}, [0.3])
        with pytest.raises(InvalidAuctionError):
            model.ctr(0, 1)

    def test_as_matrix_round_trip(self):
        model = SeparableCTRModel({0: 1.2, 1: 0.8}, [0.3, 0.2])
        matrix = model.as_matrix([0, 1])
        for advertiser in (0, 1):
            for slot in (0, 1):
                assert matrix.ctr(advertiser, slot) == pytest.approx(
                    model.ctr(advertiser, slot)
                )


class TestMatrixCTRModel:
    def test_basic(self):
        model = MatrixCTRModel({0: [0.3, 0.1], 1: [0.2, 0.05]})
        assert model.num_slots == 2
        assert model.ctr(1, 1) == pytest.approx(0.05)

    def test_empty_rejected(self):
        with pytest.raises(InvalidAuctionError):
            MatrixCTRModel({})

    def test_ragged_rows_rejected(self):
        with pytest.raises(InvalidAuctionError):
            MatrixCTRModel({0: [0.1, 0.2], 1: [0.1]})

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(InvalidAuctionError):
            MatrixCTRModel({0: [1.2]})

    def test_unknown_row_raises(self):
        model = MatrixCTRModel({0: [0.1]})
        with pytest.raises(InvalidAuctionError):
            model.ctr(5, 0)

    def test_bad_slot_raises(self):
        model = MatrixCTRModel({0: [0.1]})
        with pytest.raises(InvalidAuctionError):
            model.ctr(0, 3)


class TestSeparability:
    def test_separable_matrix_detected(self):
        model = SeparableCTRModel({0: 1.2, 1: 1.1, 2: 1.3}, [0.3, 0.2])
        assert is_separable(model.as_matrix([0, 1, 2]))

    def test_non_separable_matrix_detected(self):
        matrix = MatrixCTRModel({0: [0.3, 0.2], 1: [0.2, 0.3]})
        assert not is_separable(matrix)

    def test_factors_round_trip(self):
        original = SeparableCTRModel({0: 1.2, 1: 0.7, 2: 1.0}, [0.4, 0.3, 0.1])
        matrix = original.as_matrix([0, 1, 2])
        recovered = separable_factors(matrix)
        for advertiser in (0, 1, 2):
            for slot in range(3):
                assert recovered.ctr(advertiser, slot) == pytest.approx(
                    matrix.ctr(advertiser, slot)
                )

    def test_factors_reject_non_separable(self):
        matrix = MatrixCTRModel({0: [0.3, 0.2], 1: [0.2, 0.3]})
        with pytest.raises(InvalidAuctionError):
            separable_factors(matrix)

    def test_factors_reject_all_zero(self):
        matrix = MatrixCTRModel({0: [0.0, 0.0], 1: [0.0, 0.0]})
        with pytest.raises(InvalidAuctionError):
            separable_factors(matrix)

    def test_factors_reject_shuffled_slots(self):
        # Rank-one but slot quality increasing: must ask caller to reorder.
        matrix = MatrixCTRModel({0: [0.1, 0.2], 1: [0.2, 0.4]})
        with pytest.raises(InvalidAuctionError):
            separable_factors(matrix)

    @given(
        factors=st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=5,
        ),
        slots=st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
    )
    def test_products_are_always_separable(self, factors, slots):
        slots = sorted(slots, reverse=True)
        model = SeparableCTRModel(
            {i: c for i, c in enumerate(factors)}, slots
        )
        assert is_separable(model.as_matrix(range(len(factors))))
