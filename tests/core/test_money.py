"""Tests for the audited dollars-to-cents conversion."""

from __future__ import annotations

import pytest

from repro.core.money import dollars_to_cents
from repro.errors import InvalidAuctionError


class TestDollarsToCents:
    def test_whole_dollars(self):
        assert dollars_to_cents(0.0) == 0
        assert dollars_to_cents(1.0) == 100
        assert dollars_to_cents(250.0) == 25_000

    def test_plain_cents(self):
        assert dollars_to_cents(0.01) == 1
        assert dollars_to_cents(0.99) == 99
        assert dollars_to_cents(19.47) == 1947

    def test_half_cent_rounds_up_not_to_even(self):
        # The regression this helper exists for: ``int(round(x * 100))``
        # uses banker's rounding, so $0.125 became 12 cents while $0.135
        # became 14 -- adjacent half-cents rounding in opposite
        # directions.  Commercial rounding takes every half-cent up.
        assert dollars_to_cents(0.125) == 13
        assert dollars_to_cents(0.135) == 14
        assert dollars_to_cents(0.145) == 15
        assert dollars_to_cents(2.005) == 201

    def test_binary_representation_noise_absorbed(self):
        # 0.145 * 100 is 14.499999999999998 in binary floating point; a
        # naive floor(x + 0.5) would land on 14.  Every dollar amount
        # written with at most three decimals must convert as written.
        for cents in range(0, 3000):
            dollars = cents / 100.0
            assert dollars_to_cents(dollars) == cents, dollars
        for tenth in range(0, 300):
            half = tenth / 100.0 + 0.005
            expected = tenth + 1
            assert dollars_to_cents(half) == expected, half

    def test_rejects_negative(self):
        with pytest.raises(InvalidAuctionError):
            dollars_to_cents(-0.01)

    def test_rejects_non_finite(self):
        with pytest.raises(InvalidAuctionError):
            dollars_to_cents(float("nan"))
        with pytest.raises(InvalidAuctionError):
            dollars_to_cents(float("inf"))
