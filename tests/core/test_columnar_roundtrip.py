"""Hypothesis round-trip properties for the columnar <-> object view.

The columnar store's whole value rests on one invariant: the arrays and
the object API are two views of the *same* population.  Any mutation
expressed through the object API (``with_bid`` copies absorbed back,
phrase churn driven through the engine's maintenance layer, change-feed
events) must be visible in the arrays, and any array-side mutation must
be visible through the views -- including the derived per-phrase caches,
which are invalidated rather than recomputed eagerly and are therefore
the easiest place for staleness to hide.

The suite drives randomized mutation programs against both the store and
a plain dict-of-``Advertiser`` model, checking full equivalence after
every step.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advertiser import Advertiser
from repro.core.columnar import ColumnarStore
from repro.engine.changefeed import (
    AdvertiserRemoved,
    BidChanged,
    BudgetChanged,
    ChangeFeed,
    PhraseAdded,
    PhraseRemoved,
)

PHRASES = ["p0", "p1", "p2", "p3"]

# Bids and budgets are cent-quantized: the store mirrors them into
# int64 cent columns (as the budget manager does), so only values exact
# in cents round-trip through ``daily_budget``.
bids = st.integers(min_value=1, max_value=5000).map(lambda c: c / 100.0)
factors = st.floats(min_value=0.05, max_value=2.0, allow_nan=False)
budgets = st.one_of(
    st.just(float("inf")),
    st.integers(min_value=1, max_value=50_000).map(lambda c: c / 100.0),
)


@st.composite
def advertisers(draw, advertiser_id):
    phrases = frozenset(
        draw(st.sets(st.sampled_from(PHRASES), min_size=1, max_size=3))
    )
    overrides = {
        phrase: draw(factors)
        for phrase in phrases
        if draw(st.booleans())
    }
    return Advertiser(
        advertiser_id=advertiser_id,
        bid=draw(bids),
        ctr_factor=draw(factors),
        daily_budget=draw(budgets),
        phrases=phrases,
        phrase_ctr_factors=overrides,
    )


@st.composite
def populations(draw, min_size=1, max_size=6):
    ids = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=20),
                min_size=min_size,
                max_size=max_size,
            )
        )
    )
    return [draw(advertisers(advertiser_id)) for advertiser_id in ids]


def assert_equivalent(store: ColumnarStore, model: dict) -> None:
    """The store and the dict-of-objects model describe one population."""
    assert sorted(int(i) for i in store.ids) == sorted(model)
    for advertiser_id, source in model.items():
        view = store.advertiser(advertiser_id)
        assert view.materialize() == source
        assert view.bid == source.bid
        assert view.ctr_factor == source.ctr_factor
        assert view.daily_budget == source.daily_budget
        assert view.phrases == source.phrases
        assert dict(view.phrase_ctr_factors) == dict(
            source.phrase_ctr_factors
        )
    # Derived per-phrase caches agree with a brute-force recomputation
    # from the model -- the staleness-prone part of the store.
    live_phrases = sorted({p for a in model.values() for p in a.phrases})
    assert store.phrases() == live_phrases
    for phrase in live_phrases:
        members = sorted(
            a.advertiser_id
            for a in model.values()
            if a.interested_in(phrase)
        )
        assert [
            int(store.ids[r]) for r in store.phrase_rows(phrase)
        ] == members
        expected_ctrs = [
            model[m].ctr_factor_for(phrase) for m in members
        ]
        assert list(store.phrase_ctr(phrase)) == expected_ctrs
        ranked = sorted(
            members,
            key=lambda m: (-model[m].ctr_factor_for(phrase), m),
        )
        assert [
            int(store.ids[r]) for r in store.phrase_ctr_rank_rows(phrase)
        ] == ranked


class TestObjectToColumnar:
    """Mutations born on the object side land in the arrays."""

    @settings(max_examples=60, deadline=None)
    @given(population=populations(), new_bid=bids)
    def test_with_bid_absorb_roundtrip(self, population, new_bid):
        store = ColumnarStore(population)
        model = {a.advertiser_id: a for a in population}
        target = population[0].advertiser_id
        # Express the mutation through the *view*'s object API, absorb
        # the frozen copy, and require the arrays to have moved.
        mutated = store.advertiser(target).with_bid(new_bid)
        store.absorb(mutated)
        model[target] = model[target].with_bid(new_bid)
        assert_equivalent(store, model)

    @settings(max_examples=60, deadline=None)
    @given(
        population=populations(),
        phrase=st.sampled_from(PHRASES),
        data=st.data(),
    )
    def test_phrase_churn_roundtrip(self, population, phrase, data):
        store = ColumnarStore(population)
        model = {a.advertiser_id: a for a in population}
        target = data.draw(st.sampled_from(sorted(model)))
        current = model[target].phrases
        new_phrases = (
            current - {phrase} if phrase in current else current | {phrase}
        )
        if not new_phrases:
            new_phrases = {phrase}
        mutated = model[target].with_phrases(new_phrases)
        store.absorb(mutated)
        model[target] = mutated
        assert_equivalent(store, model)


class TestColumnarToObject:
    """Array-side mutations are visible through the object views."""

    @settings(max_examples=50, deadline=None)
    @given(population=populations(), data=st.data())
    def test_mutation_program(self, population, data):
        store = ColumnarStore(population)
        model = {a.advertiser_id: a for a in population}
        # Warm every derived cache so staleness (not absence) is tested.
        for phrase in store.phrases():
            store.phrase_ctr_rank_rows(phrase)
            store.membership_bits(phrase)
        for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
            action = data.draw(
                st.sampled_from(
                    ["set_bid", "set_budget", "add_interest",
                     "remove_interest", "remove", "add"]
                )
            )
            if action == "add":
                fresh_id = max(model, default=0) + 1
                advertiser = data.draw(advertisers(fresh_id))
                store.add_advertiser(advertiser)
                model[fresh_id] = advertiser
                continue
            target = data.draw(st.sampled_from(sorted(model)))
            if action == "set_bid":
                bid = data.draw(bids)
                store.set_bid(target, bid)
                model[target] = model[target].with_bid(bid)
            elif action == "set_budget":
                budget = data.draw(budgets)
                store.set_budget(target, budget)
                model[target] = Advertiser(
                    target,
                    bid=model[target].bid,
                    ctr_factor=model[target].ctr_factor,
                    daily_budget=budget,
                    phrases=model[target].phrases,
                    phrase_ctr_factors=model[target].phrase_ctr_factors,
                )
            elif action == "add_interest":
                phrase = data.draw(st.sampled_from(PHRASES))
                store.add_interest(target, phrase)
                model[target] = model[target].with_phrases(
                    model[target].phrases | {phrase}
                )
            elif action == "remove_interest":
                phrase = data.draw(st.sampled_from(PHRASES))
                store.remove_interest(target, phrase)
                remaining = model[target].phrases - {phrase}
                model[target] = Advertiser(
                    target,
                    bid=model[target].bid,
                    ctr_factor=model[target].ctr_factor,
                    daily_budget=model[target].daily_budget,
                    phrases=frozenset(remaining),
                    phrase_ctr_factors={
                        p: c
                        for p, c in model[
                            target
                        ].phrase_ctr_factors.items()
                        if p != phrase
                    },
                )
            elif action == "remove" and len(model) > 1:
                store.remove_advertiser(target)
                del model[target]
            assert_equivalent(store, model)


class TestChangeFeedInvalidation:
    """Events on a connected feed keep the derived arrays honest."""

    @settings(max_examples=40, deadline=None)
    @given(population=populations(min_size=2), data=st.data())
    def test_event_program(self, population, data):
        store = ColumnarStore(population)
        model = {a.advertiser_id: a for a in population}
        feed = ChangeFeed()
        store.connect(feed)
        for phrase in store.phrases():
            store.phrase_ctr_rank_rows(phrase)
        for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
            kind = data.draw(
                st.sampled_from(
                    ["bid", "budget", "removed", "phrase_added",
                     "phrase_removed"]
                )
            )
            if kind == "bid":
                # The event is the *notification*; the value change
                # itself arrives through the arrays (as the engine's
                # budget manager and bid books do in production).
                target = data.draw(st.sampled_from(sorted(model)))
                bid = data.draw(bids)
                store.set_bid(target, bid)
                model[target] = model[target].with_bid(bid)
                feed.publish(BidChanged(target))
            elif kind == "budget":
                target = data.draw(st.sampled_from(sorted(model)))
                feed.publish(BudgetChanged(target))
            elif kind == "removed" and len(model) > 1:
                target = data.draw(st.sampled_from(sorted(model)))
                feed.publish(AdvertiserRemoved(target))
                del model[target]
            elif kind == "phrase_added":
                phrase = data.draw(st.sampled_from(PHRASES))
                member_pool = sorted(model)
                members = data.draw(
                    st.sets(
                        st.sampled_from(member_pool), min_size=1
                    )
                )
                feed.publish(
                    PhraseAdded(phrase, frozenset(members))
                )
                for member in members:
                    model[member] = model[member].with_phrases(
                        model[member].phrases | {phrase}
                    )
            elif kind == "phrase_removed":
                phrase = data.draw(st.sampled_from(PHRASES))
                feed.publish(PhraseRemoved(phrase))
                for advertiser_id in list(model):
                    source = model[advertiser_id]
                    if not source.interested_in(phrase):
                        if phrase not in source.phrase_ctr_factors:
                            continue
                    model[advertiser_id] = Advertiser(
                        advertiser_id,
                        bid=source.bid,
                        ctr_factor=source.ctr_factor,
                        daily_budget=source.daily_budget,
                        phrases=frozenset(source.phrases - {phrase}),
                        phrase_ctr_factors={
                            p: c
                            for p, c in source.phrase_ctr_factors.items()
                            if p != phrase
                        },
                    )
            survivors = {
                advertiser_id: source
                for advertiser_id, source in model.items()
                if source.phrases
            }
            # Phrase removal can leave an advertiser phrase-less; the
            # store keeps the row (it only drops rows on
            # advertiser_removed), so compare on the full model but
            # skip the live-phrase assertion for empty members.
            if survivors == model:
                assert_equivalent(store, model)
            else:
                for advertiser_id, source in model.items():
                    view = store.advertiser(advertiser_id)
                    assert view.phrases == source.phrases
