"""Tests for the pricing rules (first price, GSP, laddered VCG)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.advertiser import Advertiser
from repro.core.auction import AuctionSpec
from repro.core.ctr import MatrixCTRModel, SeparableCTRModel
from repro.core.pricing import FirstPrice, GeneralizedSecondPrice, LadderedVCG
from repro.errors import InvalidAuctionError


def make_spec(bids_and_factors, slot_factors):
    advertisers = [
        Advertiser(i, bid=b, ctr_factor=c)
        for i, (b, c) in enumerate(bids_and_factors)
    ]
    model = SeparableCTRModel(
        {a.advertiser_id: a.ctr_factor for a in advertisers}, slot_factors
    )
    return AuctionSpec("p", advertisers, model)


random_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    ),
    min_size=1,
    max_size=6,
).map(lambda data: make_spec(data, [0.4, 0.25, 0.1][: max(1, len(data) // 2)]))


class TestFirstPrice:
    def test_winners_pay_their_bid(self):
        spec = make_spec([(2.0, 1.0), (1.0, 1.0)], [0.4, 0.2])
        outcome = FirstPrice().run(spec)
        assert outcome.prices == {0: 2.0, 1: 1.0}

    @settings(deadline=None, max_examples=40)
    @given(random_specs)
    def test_price_equals_bid(self, spec):
        outcome = FirstPrice().run(spec)
        for advertiser_id, price in outcome.prices.items():
            assert price == spec.advertiser_by_id(advertiser_id).bid


class TestGSP:
    def test_winner_pays_next_score_over_own_factor(self):
        spec = make_spec([(2.0, 1.0), (1.5, 1.0), (1.0, 1.0)], [0.4, 0.2])
        outcome = GeneralizedSecondPrice().run(spec)
        # Slot 1 winner (score 2.0) pays the runner-up score 1.5 / c=1.
        assert outcome.prices[0] == pytest.approx(1.5)
        # Slot 2 winner pays third score 1.0.
        assert outcome.prices[1] == pytest.approx(1.0)

    def test_last_winner_pays_zero_without_runner_up(self):
        spec = make_spec([(2.0, 1.0)], [0.4])
        outcome = GeneralizedSecondPrice().run(spec)
        assert outcome.prices[0] == 0.0

    def test_requires_separable_model(self):
        matrix = MatrixCTRModel({0: [0.3], 1: [0.2]})
        spec = AuctionSpec("p", [Advertiser(0, 1.0), Advertiser(1, 1.0)], matrix)
        with pytest.raises(InvalidAuctionError):
            GeneralizedSecondPrice().run(spec)

    @settings(deadline=None, max_examples=40)
    @given(random_specs)
    def test_never_exceeds_bid(self, spec):
        outcome = GeneralizedSecondPrice().run(spec)
        for advertiser_id, price in outcome.prices.items():
            assert price <= spec.advertiser_by_id(advertiser_id).bid + 1e-12

    @settings(deadline=None, max_examples=40)
    @given(random_specs)
    def test_prices_decrease_down_the_slots(self, spec):
        """Per-click GSP price is non-increasing in slot rank when CTR
        factors are equal; in general the *score-denominated* charge
        (price * c_i) is non-increasing because it equals the next rank's
        score."""
        outcome = GeneralizedSecondPrice().run(spec)
        model = spec.ctr_model
        charges = []
        for slot, advertiser_id in enumerate(
            outcome.allocation.slot_to_advertiser
        ):
            if advertiser_id is None:
                continue
            c = model.advertiser_factor(advertiser_id)
            bid = spec.advertiser_by_id(advertiser_id).bid
            price = outcome.prices[advertiser_id]
            if price < bid - 1e-12:  # uncapped charge equals next score
                charges.append(price * c)
        assert all(a >= b - 1e-9 for a, b in zip(charges, charges[1:]))


class TestLadderedVCG:
    def test_single_slot_reduces_to_second_price(self):
        spec = make_spec([(2.0, 1.0), (1.5, 1.0), (1.0, 1.0)], [0.4])
        vcg = LadderedVCG().run(spec)
        gsp = GeneralizedSecondPrice().run(spec)
        assert vcg.prices[0] == pytest.approx(gsp.prices[0]) == pytest.approx(1.5)

    def test_ladder_example(self):
        # d = (0.4, 0.2); scores: 2.0, 1.5, 1.0 (all c = 1).
        spec = make_spec([(2.0, 1.0), (1.5, 1.0), (1.0, 1.0)], [0.4, 0.2])
        outcome = LadderedVCG().run(spec)
        # Slot 1: ((0.4-0.2)*1.5 + (0.2-0)*1.0) / 0.4 = (0.3+0.2)/0.4
        assert outcome.prices[0] == pytest.approx(0.5 / 0.4)
        # Slot 2: (0.2-0)*1.0 / 0.2 = 1.0
        assert outcome.prices[1] == pytest.approx(1.0)

    @settings(deadline=None, max_examples=40)
    @given(random_specs)
    def test_never_exceeds_bid(self, spec):
        outcome = LadderedVCG().run(spec)
        for advertiser_id, price in outcome.prices.items():
            assert price <= spec.advertiser_by_id(advertiser_id).bid + 1e-12

    @settings(deadline=None, max_examples=40)
    @given(random_specs)
    def test_vcg_revenue_at_most_gsp(self, spec):
        """With GSP charges uncapped by own bids, laddered VCG never
        charges more per click than GSP in the same slot (Edelman et
        al.); with the bid cap both are clipped identically, keeping the
        inequality."""
        vcg = LadderedVCG().run(spec)
        gsp = GeneralizedSecondPrice().run(spec)
        for advertiser_id, price in vcg.prices.items():
            assert price <= gsp.prices[advertiser_id] + 1e-9

    def test_requires_separable_model(self):
        matrix = MatrixCTRModel({0: [0.3], 1: [0.2]})
        spec = AuctionSpec("p", [Advertiser(0, 1.0), Advertiser(1, 1.0)], matrix)
        with pytest.raises(InvalidAuctionError):
            LadderedVCG().run(spec)
