"""Property-based tests for the top-k merge algebra.

``top_k_merge`` is the semilattice-with-identity operator of Section
II-C: associative (A1), with ``TopKList.empty`` as identity (A2),
idempotent (A3), commutative (A4).  Beyond the raw axioms, the key
structural fact the shared plans rely on is that merge is a
*homomorphism from concatenation*: top-k of a merge of two k-lists
equals top-k of the concatenation of their underlying entries, so any
aggregation tree over the same leaves yields the same answer.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.topk import TopKList, top_k_merge, top_k_scan
from repro.instrument import MetricsCollector, names

from tests.conftest import scored_advertisers, topk_lists


@st.composite
def same_k_lists(draw, count: int = 2, max_k: int = 5):
    """``count`` TopKLists sharing one capacity (merge requires equal k)."""
    k = draw(st.integers(min_value=1, max_value=max_k))
    out = []
    for _ in range(count):
        entries = draw(st.lists(scored_advertisers(), max_size=10))
        out.append(TopKList(k, entries))
    return out


class TestMergeAxioms:
    @given(same_k_lists(count=3))
    def test_a1_associativity(self, lists):
        a, b, c = lists
        assert top_k_merge(top_k_merge(a, b), c) == top_k_merge(
            a, top_k_merge(b, c)
        )

    @given(topk_lists())
    def test_a2_identity(self, a):
        identity = TopKList.empty(a.k)
        assert top_k_merge(a, identity) == a
        assert top_k_merge(identity, a) == a

    @given(topk_lists())
    def test_a3_idempotence(self, a):
        assert top_k_merge(a, a) == a

    @given(same_k_lists(count=2))
    def test_a4_commutativity(self, lists):
        a, b = lists
        assert top_k_merge(a, b) == top_k_merge(b, a)


class TestMergeSemantics:
    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(scored_advertisers(), max_size=10),
        st.lists(scored_advertisers(), max_size=10),
    )
    def test_merge_equals_topk_of_concatenation(self, k, left, right):
        merged = top_k_merge(TopKList(k, left), TopKList(k, right))
        assert merged == TopKList(k, left + right)

    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(scored_advertisers(), max_size=14),
    )
    def test_scan_equals_constructor(self, k, entries):
        assert top_k_scan(k, entries) == TopKList(k, entries)

    @given(topk_lists())
    def test_merge_result_is_canonical(self, a):
        merged = top_k_merge(a, a)
        # The fast-path constructor bypass must still yield canonical
        # (sorted, deduplicated, truncated) lists.
        assert merged == TopKList(merged.k, merged.entries)

    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(scored_advertisers(), min_size=1, max_size=10),
    )
    def test_threshold_bounds_retained_entries(self, k, entries):
        result = TopKList(k, entries)
        for entry in result:
            assert entry.score >= result.threshold() or len(result) < k


class TestScanInstrumentation:
    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(scored_advertisers(), max_size=12),
    )
    def test_scan_counts_every_entry(self, k, entries):
        collector = MetricsCollector()
        top_k_scan(k, entries, collector)
        assert collector.counter(names.TOPK_SCANS) == 1
        assert collector.counter(names.TOPK_SCAN_ENTRIES) == len(entries)

    def test_merge_counts_when_collector_passed(self):
        collector = MetricsCollector()
        a = TopKList(2, [(1.0, 1)])
        top_k_merge(a, a, collector)
        top_k_merge(a, a, collector)
        assert collector.counter(names.TOPK_MERGES) == 2
