"""Tests for single-auction winner determination, separable and not."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.advertiser import Advertiser
from repro.core.auction import AuctionSpec
from repro.core.ctr import MatrixCTRModel, SeparableCTRModel
from repro.core.topk import TopKList
from repro.core.winner_determination import (
    allocation_from_topk,
    brute_force_winner_determination,
    determine_winners,
    determine_winners_nonseparable,
    determine_winners_separable,
    prune_candidates,
)
from repro.errors import InvalidAuctionError


def separable_spec(bids_and_factors, slot_factors, phrase="p"):
    advertisers = [
        Advertiser(i, bid=b, ctr_factor=c)
        for i, (b, c) in enumerate(bids_and_factors)
    ]
    model = SeparableCTRModel(
        {a.advertiser_id: a.ctr_factor for a in advertisers}, slot_factors
    )
    return AuctionSpec(phrase, advertisers, model)


class TestSeparableWinnerDetermination:
    def test_orders_by_score(self):
        spec = separable_spec([(1.0, 1.2), (1.0, 1.1), (0.8, 1.3)], [0.3, 0.2])
        allocation = determine_winners_separable(spec)
        assert allocation.slot_to_advertiser == (0, 1)

    def test_value_is_sum_of_score_times_slot_factor(self):
        spec = separable_spec([(2.0, 1.0), (1.0, 1.0)], [0.5, 0.25])
        allocation = determine_winners_separable(spec)
        assert allocation.expected_value == pytest.approx(2 * 0.5 + 1 * 0.25)

    def test_fewer_advertisers_than_slots(self):
        spec = separable_spec([(1.0, 1.0)], [0.5, 0.25, 0.1])
        allocation = determine_winners_separable(spec)
        assert allocation.slot_to_advertiser == (0, None, None)

    def test_tie_broken_by_lower_id(self):
        spec = separable_spec([(1.0, 1.0), (1.0, 1.0)], [0.5])
        allocation = determine_winners_separable(spec)
        assert allocation.slot_to_advertiser == (0,)

    def test_requires_separable_model(self):
        matrix = MatrixCTRModel({0: [0.3], 1: [0.2]})
        spec = AuctionSpec("p", [Advertiser(0, 1.0), Advertiser(1, 1.0)], matrix)
        with pytest.raises(InvalidAuctionError):
            determine_winners_separable(spec)

    def test_dispatch_picks_separable(self):
        spec = separable_spec([(1.0, 1.0)], [0.5])
        assert determine_winners(spec).slot_to_advertiser == (0,)

    @settings(deadline=None, max_examples=60)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        ),
        slots=st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=3,
        ),
    )
    def test_matches_brute_force(self, data, slots):
        spec = separable_spec(data, sorted(slots, reverse=True))
        fast = determine_winners_separable(spec)
        slow = brute_force_winner_determination(spec)
        assert fast.expected_value == pytest.approx(
            slow.expected_value, abs=1e-9
        )


class TestAllocationFromTopK:
    def test_bridges_ranking_to_allocation(self):
        model = SeparableCTRModel({0: 1.0, 1: 1.0}, [0.5, 0.25])
        ranking = TopKList(2, [(3.0, 1), (2.0, 0)])
        allocation = allocation_from_topk(ranking, model, 2)
        assert allocation.slot_to_advertiser == (1, 0)
        assert allocation.expected_value == pytest.approx(3 * 0.5 + 2 * 0.25)

    def test_ranking_longer_than_slots(self):
        model = SeparableCTRModel({0: 1.0}, [0.5])
        ranking = TopKList(3, [(3.0, 1), (2.0, 0), (1.0, 2)])
        allocation = allocation_from_topk(ranking, model, 1)
        assert allocation.slot_to_advertiser == (1,)


class TestNonSeparable:
    def test_simple_matrix(self):
        # Advertiser 0 much better in slot 1 than 0; matching must cross.
        matrix = MatrixCTRModel({0: [0.10, 0.30], 1: [0.30, 0.10]})
        spec = AuctionSpec(
            "p", [Advertiser(0, 1.0), Advertiser(1, 1.0)], matrix
        )
        allocation = determine_winners_nonseparable(spec)
        assert allocation.slot_to_advertiser == (1, 0)
        assert allocation.expected_value == pytest.approx(0.6)

    def test_empty_auction(self):
        matrix = MatrixCTRModel({0: [0.3]})
        spec = AuctionSpec("p", [], matrix, num_slots=1)
        allocation = determine_winners_nonseparable(spec)
        assert allocation.slot_to_advertiser == (None,)

    def test_pruning_preserves_optimum(self):
        # 20 advertisers, 2 slots: pruned (<= k^2 kept) equals unpruned.
        rows = {
            i: [0.01 * ((i * 7) % 13 + 1), 0.015 * ((i * 5) % 11 + 1)]
            for i in range(20)
        }
        matrix = MatrixCTRModel(rows)
        advertisers = [Advertiser(i, bid=1.0 + (i % 4)) for i in range(20)]
        spec = AuctionSpec("p", advertisers, matrix)
        pruned = determine_winners_nonseparable(spec, prune=True)
        full = determine_winners_nonseparable(spec, prune=False)
        assert pruned.expected_value == pytest.approx(full.expected_value)

    def test_prune_keeps_at_most_k_squared(self):
        rows = {i: [0.01 * (i + 1), 0.02] for i in range(30)}
        matrix = MatrixCTRModel(rows)
        advertisers = [Advertiser(i, bid=1.0) for i in range(30)]
        kept = prune_candidates(advertisers, matrix, 2)
        assert len(kept) <= 4

    def test_prune_keeps_top_per_slot(self):
        rows = {
            0: [0.9, 0.1],
            1: [0.1, 0.9],
            2: [0.5, 0.5],
            3: [0.05, 0.05],
            4: [0.04, 0.03],
            5: [0.02, 0.01],
        }
        matrix = MatrixCTRModel(rows)
        advertisers = [Advertiser(i, bid=1.0) for i in range(6)]
        kept = prune_candidates(advertisers, matrix, 2)
        ids = [a.advertiser_id for a in kept]
        # The per-slot specialists and the balanced advertiser survive;
        # the dominated tail is pruned.
        assert 0 in ids and 1 in ids and 2 in ids
        assert 5 not in ids

    @settings(deadline=None, max_examples=40)
    @given(
        st.tuples(
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=1, max_value=2),
        ).flatmap(
            lambda nk: st.tuples(
                st.lists(
                    st.lists(
                        st.floats(
                            min_value=0.0, max_value=1.0, allow_nan=False
                        ),
                        min_size=nk[1],
                        max_size=nk[1],
                    ),
                    min_size=nk[0],
                    max_size=nk[0],
                ),
                st.lists(
                    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                    min_size=nk[0],
                    max_size=nk[0],
                ),
            )
        )
    )
    def test_matches_brute_force(self, data):
        rows, bids = data
        matrix = MatrixCTRModel({i: row for i, row in enumerate(rows)})
        advertisers = [Advertiser(i, bid=b) for i, b in enumerate(bids)]
        spec = AuctionSpec("p", advertisers, matrix)
        fast = determine_winners_nonseparable(spec)
        slow = brute_force_winner_determination(spec)
        assert fast.expected_value == pytest.approx(
            slow.expected_value, abs=1e-9
        )

    def test_separable_and_nonseparable_agree(self):
        spec = separable_spec(
            [(1.0, 1.2), (1.5, 0.9), (0.7, 1.4), (2.0, 0.5)], [0.4, 0.2]
        )
        matrix_spec = AuctionSpec(
            "p",
            spec.advertisers,
            spec.ctr_model.as_matrix([a.advertiser_id for a in spec.advertisers]),
        )
        separable = determine_winners_separable(spec)
        general = determine_winners_nonseparable(matrix_spec)
        assert separable.expected_value == pytest.approx(
            general.expected_value
        )
