"""Tests for bidding strategies and the bidding-war harness."""

from __future__ import annotations

import pytest

from repro.bidding.runner import BiddingWar
from repro.bidding.strategies import (
    BudgetPacing,
    OutbidCompetitor,
    RoundObservation,
    StaticBid,
    TargetSlot,
)
from repro.errors import InvalidAuctionError


def observe(
    my_slot=None,
    ranking=(),
    my_bid=1.0,
    my_spend=0.0,
    round_index=0,
    rounds_remaining=10,
):
    return RoundObservation(
        round_index=round_index,
        my_slot=my_slot,
        ranking=tuple(ranking),
        my_bid=my_bid,
        my_spend=my_spend,
        rounds_remaining=rounds_remaining,
    )


class TestStrategies:
    def test_static_never_moves(self):
        strategy = StaticBid(1.25)
        assert strategy.next_bid(observe(my_slot=0)) == 1.25
        assert strategy.next_bid(observe(my_slot=None)) == 1.25

    def test_target_slot_raises_when_below(self):
        strategy = TargetSlot(slot=0, step=0.1)
        assert strategy.next_bid(observe(my_slot=2, my_bid=1.0)) == pytest.approx(1.1)
        assert strategy.next_bid(observe(my_slot=None, my_bid=1.0)) == pytest.approx(1.1)

    def test_target_slot_shaves_when_above(self):
        strategy = TargetSlot(slot=2, shave=0.9)
        assert strategy.next_bid(observe(my_slot=0, my_bid=1.0)) == pytest.approx(0.9)

    def test_target_slot_holds_at_target(self):
        strategy = TargetSlot(slot=1)
        assert strategy.next_bid(observe(my_slot=1, my_bid=1.0)) == 1.0

    def test_target_slot_respects_cap(self):
        strategy = TargetSlot(slot=0, step=10.0, max_bid=2.0)
        assert strategy.next_bid(observe(my_slot=None, my_bid=1.5)) == 2.0

    def test_target_slot_validation(self):
        with pytest.raises(InvalidAuctionError):
            TargetSlot(slot=-1)
        with pytest.raises(InvalidAuctionError):
            TargetSlot(slot=0, shave=0.0)

    def test_outbid_raises_when_competitor_above(self):
        strategy = OutbidCompetitor(competitor_id=9, step=0.2)
        bid = strategy.next_bid(
            observe(my_slot=2, ranking=(9, 5, 1), my_bid=1.0)
        )
        assert bid == pytest.approx(1.2)

    def test_outbid_relaxes_when_ahead(self):
        strategy = OutbidCompetitor(competitor_id=9, shave=0.95)
        bid = strategy.next_bid(
            observe(my_slot=0, ranking=(1, 9), my_bid=1.0)
        )
        assert bid == pytest.approx(0.95)

    def test_budget_pacing_spends_evenly(self):
        strategy = BudgetPacing(daily_budget=100.0, valuation=5.0)
        bid = strategy.next_bid(
            observe(my_spend=0.0, rounds_remaining=50)
        )
        assert bid == pytest.approx(2.0)

    def test_budget_pacing_caps_at_valuation(self):
        strategy = BudgetPacing(daily_budget=1000.0, valuation=3.0)
        assert strategy.next_bid(observe(rounds_remaining=1)) == 3.0

    def test_budget_pacing_stops_when_exhausted(self):
        strategy = BudgetPacing(daily_budget=10.0, valuation=5.0)
        assert strategy.next_bid(observe(my_spend=10.0, rounds_remaining=5)) == 0.0

    def test_budget_pacing_validation(self):
        with pytest.raises(InvalidAuctionError):
            BudgetPacing(daily_budget=-1.0, valuation=1.0)


class TestBiddingWar:
    def make_war(self, strategies, rounds=50):
        ids = list(strategies)
        return BiddingWar(
            strategies=strategies,
            initial_bids={i: 1.0 for i in ids},
            ctr_factors={i: 1.0 for i in ids},
            slot_factors=[0.3, 0.2],
            rounds=rounds,
        )

    def test_mismatched_maps_rejected(self):
        with pytest.raises(InvalidAuctionError):
            BiddingWar(
                strategies={1: StaticBid(1.0)},
                initial_bids={1: 1.0, 2: 1.0},
                ctr_factors={1: 1.0},
                slot_factors=[0.3],
                rounds=5,
            )

    def test_needs_rounds(self):
        with pytest.raises(InvalidAuctionError):
            self.make_war({1: StaticBid(1.0), 2: StaticBid(1.0)}, rounds=0)

    def test_traces_have_full_length(self):
        war = self.make_war(
            {1: StaticBid(1.0), 2: StaticBid(2.0), 3: StaticBid(0.5)},
            rounds=20,
        )
        traces = war.run()
        for trace in traces.values():
            assert len(trace.bids) == 20
            assert len(trace.slots) == 20
            assert len(trace.spend) == 20

    def test_static_ranking_is_stable(self):
        war = self.make_war(
            {1: StaticBid(3.0), 2: StaticBid(2.0), 3: StaticBid(1.0)}
        )
        traces = war.run()
        assert set(traces[1].slots) == {0}
        assert set(traces[2].slots) == {1}
        assert set(traces[3].slots) == {None}

    def test_target_slot_converges_to_top(self):
        """A climber targeting slot 0 against statics eventually takes it."""
        war = self.make_war(
            {
                1: TargetSlot(slot=0, step=0.1),
                2: StaticBid(2.0),
                3: StaticBid(1.5),
            },
            rounds=60,
        )
        traces = war.run()
        assert traces[1].slots[-1] == 0
        assert traces[1].bids[-1] > 2.0

    def test_outbid_duel_escalates(self):
        """Two mutual outbidders ratchet each other upward."""
        war = self.make_war(
            {
                1: OutbidCompetitor(competitor_id=2, step=0.1),
                2: OutbidCompetitor(competitor_id=1, step=0.1),
            },
            rounds=80,
        )
        traces = war.run()
        assert max(traces[1].bids[-1], traces[2].bids[-1]) > 2.0

    def test_budget_pacer_stays_within_budget(self):
        war = self.make_war(
            {
                1: BudgetPacing(daily_budget=5.0, valuation=4.0),
                2: StaticBid(0.5),
            },
            rounds=100,
        )
        traces = war.run()
        assert traces[1].spend[-1] <= 5.0 + 1e-6

    def test_spend_is_monotone(self):
        war = self.make_war(
            {1: StaticBid(2.0), 2: StaticBid(1.0)}, rounds=30
        )
        traces = war.run()
        for trace in traces.values():
            assert all(
                a <= b + 1e-12 for a, b in zip(trace.spend, trace.spend[1:])
            )
