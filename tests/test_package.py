"""Package-level consistency checks: exports, errors, metadata."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro
from repro import errors

PACKAGES = [
    "repro",
    "repro.aggregates",
    "repro.algebra",
    "repro.bidding",
    "repro.budgets",
    "repro.core",
    "repro.engine",
    "repro.matching",
    "repro.metrics",
    "repro.plans",
    "repro.sharedsort",
    "repro.workloads",
]


def all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("module_name", all_modules())
    def test_every_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", all_modules())
    def test_every_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_version(self):
        assert repro.__version__ == "0.1.0"


class TestErrors:
    def test_hierarchy(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, Exception)
            if name != "ReproError":
                assert issubclass(exc, errors.ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.InvalidPlanError("x")

    def test_distinct_categories(self):
        assert not issubclass(errors.BudgetError, errors.InvalidPlanError)
        assert not issubclass(errors.AlgebraError, errors.BudgetError)
