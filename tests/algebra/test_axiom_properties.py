"""Property-based axiom checks for every shipped aggregation operator.

The finite-magma tests exhaustively verify the axioms on tiny projected
carriers; these hypothesis tests complement them by checking A1-A4 on
*random elements of the real carriers* (floats, TopKLists, Bloom
filters), as declared by each operator's :class:`AxiomProfile`.

Raw scores are drawn as integer-valued floats so sums and products are
exact in IEEE-754 arithmetic and associativity/commutativity can be
asserted with ``==`` rather than approximately.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.aggregates.operators import (
    AggregateOperator,
    bloom_intersection_operator,
    bloom_union_operator,
    count_operator,
    max_operator,
    min_operator,
    product_operator,
    sum_operator,
    top_k_operator,
)
from repro.algebra.axioms import (
    SEMILATTICE_WITH_IDENTITY,
    Axiom,
    AxiomProfile,
    structure_names,
)
from repro.errors import AlgebraError

SHIPPED_OPERATORS = [
    sum_operator(),
    count_operator(),
    product_operator(),
    max_operator(),
    min_operator(),
    top_k_operator(3),
    bloom_union_operator(width=32),
    bloom_intersection_operator(width=32),
]

# Integer raw scores: exact under +, *, max, min up to well below 2**53
# (products of four lifts stay <= 12**4).
_raw_scores = st.integers(min_value=1, max_value=12).map(float)
_advertisers = st.integers(min_value=0, max_value=40)


def carrier_elements(operator: AggregateOperator):
    """Random carrier elements: folds of one to four lifted raw values."""
    lifted = st.tuples(_raw_scores, _advertisers).map(
        lambda pair: operator.lift(*pair)
    )
    return st.lists(lifted, min_size=1, max_size=4).map(operator.fold)


@pytest.mark.parametrize(
    "operator", SHIPPED_OPERATORS, ids=lambda op: op.name
)
class TestDeclaredAxiomsHold:
    """A1-A4 of each operator's declared profile on random carrier values."""

    @given(data=st.data())
    def test_a1_associativity(self, operator, data):
        assert operator.profile.associative  # every shipped operator
        elements = carrier_elements(operator)
        a, b, c = (data.draw(elements, label=n) for n in "abc")
        assert operator.combine(operator.combine(a, b), c) == operator.combine(
            a, operator.combine(b, c)
        )

    @given(data=st.data())
    def test_a2_identity(self, operator, data):
        assert operator.profile.has_identity
        a = data.draw(carrier_elements(operator), label="a")
        assert operator.combine(a, operator.identity) == a
        assert operator.combine(operator.identity, a) == a

    @given(data=st.data())
    def test_a3_idempotence(self, operator, data):
        if not operator.profile.idempotent:
            pytest.skip(f"{operator.name} does not declare A3")
        a = data.draw(carrier_elements(operator), label="a")
        assert operator.combine(a, a) == a

    @given(data=st.data())
    def test_a4_commutativity(self, operator, data):
        assert operator.profile.commutative
        elements = carrier_elements(operator)
        a = data.draw(elements, label="a")
        b = data.draw(elements, label="b")
        assert operator.combine(a, b) == operator.combine(b, a)

    @given(data=st.data())
    def test_fold_agrees_with_pairwise_combination(self, operator, data):
        elements = data.draw(
            st.lists(carrier_elements(operator), min_size=1, max_size=5)
        )
        folded = operator.fold(elements)
        accumulator = elements[0]
        for value in elements[1:]:
            accumulator = operator.combine(accumulator, value)
        assert folded == accumulator

    def test_fold_of_nothing_is_identity(self, operator):
        assert operator.fold([]) == operator.identity


class TestProfileMachinery:
    def test_identity_and_profile_must_agree(self):
        with pytest.raises(AlgebraError):
            AggregateOperator(
                name="broken",
                combine=lambda a, b: a,
                lift=lambda score, _ad: score,
                profile=AxiomProfile({Axiom.A1, Axiom.A2}),
                identity=None,
            )

    def test_semilattice_profile_structures(self):
        names = structure_names(SEMILATTICE_WITH_IDENTITY)
        assert names[0] == "semilattice"
        assert set(names) == {"semilattice", "band", "monoid", "semigroup"}

    @given(
        st.frozensets(st.sampled_from(list(Axiom))),
        st.frozensets(st.sampled_from(list(Axiom))),
    )
    def test_structure_names_monotone_in_profile(self, small, extra):
        weak = AxiomProfile(small)
        strong = AxiomProfile(small | extra)
        assert set(structure_names(weak)) <= set(structure_names(strong))

    @given(st.frozensets(st.sampled_from(list(Axiom))))
    def test_profile_predicates_match_membership(self, axioms):
        profile = AxiomProfile(axioms)
        assert profile.associative == (Axiom.A1 in axioms)
        assert profile.has_identity == (Axiom.A2 in axioms)
        assert profile.idempotent == (Axiom.A3 in axioms)
        assert profile.commutative == (Axiom.A4 in axioms)
        assert profile.divisible == (Axiom.A5 in axioms)
