"""Tests for finite magmas and exhaustive axiom checking."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.axioms import Axiom, AxiomProfile
from repro.algebra.magmas import (
    FiniteMagma,
    boolean_or_monoid,
    cyclic_group,
    left_zero_band,
    max_semilattice,
    min_semilattice,
    satisfied_axioms,
    subtraction_quasigroup,
)
from repro.errors import AlgebraError


class TestFiniteMagmaValidation:
    def test_empty_rejected(self):
        with pytest.raises(AlgebraError):
            FiniteMagma([])

    def test_non_square_rejected(self):
        with pytest.raises(AlgebraError):
            FiniteMagma([[0, 1], [0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(AlgebraError):
            FiniteMagma([[0, 2], [0, 1]])

    def test_order_and_op(self):
        magma = FiniteMagma([[1, 0], [0, 1]])
        assert magma.order == 2
        assert magma.op(0, 1) == 0


class TestStandardExamples:
    def test_min_is_semilattice_with_identity(self):
        assert satisfied_axioms(min_semilattice(5)) == AxiomProfile(
            {Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}
        )
        assert min_semilattice(5).identity_element() == 4

    def test_max_is_semilattice_with_identity(self):
        assert satisfied_axioms(max_semilattice(4)) == AxiomProfile(
            {Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}
        )
        assert max_semilattice(4).identity_element() == 0

    def test_cyclic_group_is_abelian_group(self):
        assert satisfied_axioms(cyclic_group(6)) == AxiomProfile(
            {Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5}
        )

    def test_trivial_group_is_everything(self):
        assert satisfied_axioms(cyclic_group(1)) == AxiomProfile(
            {Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4, Axiom.A5}
        )

    def test_z2_is_not_idempotent(self):
        assert Axiom.A3 not in satisfied_axioms(cyclic_group(2))

    def test_left_zero_band(self):
        profile = satisfied_axioms(left_zero_band(3))
        assert profile == AxiomProfile({Axiom.A1, Axiom.A3})

    def test_left_zero_band_requires_order_two(self):
        with pytest.raises(AlgebraError):
            left_zero_band(1)

    def test_boolean_or(self):
        assert satisfied_axioms(boolean_or_monoid()) == AxiomProfile(
            {Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4}
        )

    def test_subtraction_quasigroup(self):
        profile = satisfied_axioms(subtraction_quasigroup(5))
        assert profile == AxiomProfile({Axiom.A5})

    def test_subtraction_quasigroup_minimum_order(self):
        with pytest.raises(AlgebraError):
            subtraction_quasigroup(2)


class TestDivisibility:
    def test_latin_square_is_divisible(self):
        magma = FiniteMagma([[0, 1, 2], [1, 2, 0], [2, 0, 1]])
        assert magma.is_divisible()

    def test_repeated_row_is_not_divisible(self):
        magma = FiniteMagma([[0, 0], [1, 1]])
        assert not magma.is_divisible()

    def test_repeated_column_is_not_divisible(self):
        magma = FiniteMagma([[0, 1], [0, 1]])
        assert not magma.is_divisible()


@st.composite
def random_magmas(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    table = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=n,
                max_size=n,
            ),
            min_size=n,
            max_size=n,
        )
    )
    return FiniteMagma(table)


class TestAxiomCheckingConsistency:
    @settings(deadline=None, max_examples=80)
    @given(random_magmas())
    def test_axiom_checks_agree_with_definitions(self, magma):
        """The profile returned matches per-axiom exhaustive re-checks."""
        profile = satisfied_axioms(magma)
        n = magma.order
        assoc = all(
            magma.op(a, magma.op(b, c)) == magma.op(magma.op(a, b), c)
            for a in range(n)
            for b in range(n)
            for c in range(n)
        )
        assert (Axiom.A1 in profile) == assoc
        comm = all(
            magma.op(a, b) == magma.op(b, a)
            for a in range(n)
            for b in range(n)
        )
        assert (Axiom.A4 in profile) == comm
        idem = all(magma.op(a, a) == a for a in range(n))
        assert (Axiom.A3 in profile) == idem

    @settings(deadline=None, max_examples=80)
    @given(random_magmas())
    def test_identity_element_is_two_sided(self, magma):
        e = magma.identity_element()
        if e is not None:
            assert all(
                magma.op(a, e) == a and magma.op(e, a) == a
                for a in range(magma.order)
            )
