"""Tests for the Fig. 5 complexity table."""

from __future__ import annotations

import pytest

from repro.algebra.axioms import Axiom, AxiomProfile, SEMILATTICE_WITH_IDENTITY
from repro.algebra.complexity import (
    Complexity,
    complexity_of,
    complexity_table,
    fig5_rows,
    row_for,
)


def profile(*axioms: Axiom) -> AxiomProfile:
    return AxiomProfile(set(axioms))


class TestFig5Table:
    def test_has_nine_rows(self):
        assert len(fig5_rows()) == 9

    def test_publication_order(self):
        values = [row.complexity for row in fig5_rows()]
        assert values == [
            Complexity.PTIME,
            Complexity.PTIME,
            Complexity.PTIME,
            Complexity.PTIME,
            Complexity.CONSTANT,
            Complexity.NP_COMPLETE,
            Complexity.NP_COMPLETE,
            Complexity.NP_COMPLETE,
            Complexity.CONSTANT,
        ]

    def test_rows_are_mutually_exclusive(self):
        """No exact profile matches two rows (the paper's table is a
        partition of the covered cases)."""
        all_axioms = list(Axiom)
        for mask in range(32):
            p = AxiomProfile(
                {a for i, a in enumerate(all_axioms) if mask >> i & 1}
            )
            matches = [row for row in fig5_rows() if row.matches(p)]
            assert len(matches) <= 1, (p, matches)

    def test_printable_table(self):
        table = complexity_table()
        assert len(table) == 9
        assert table[0] == (("N", "*", "*", "*", "N"), "PTIME")


class TestComplexityOf:
    def test_topk_operator_is_np_complete(self):
        """The headline result: semilattices (with or without identity)
        are NP-complete -- Theorem 2."""
        assert complexity_of(SEMILATTICE_WITH_IDENTITY) == Complexity.NP_COMPLETE
        assert (
            complexity_of(profile(Axiom.A1, Axiom.A3, Axiom.A4))
            == Complexity.NP_COMPLETE
        )

    def test_abelian_groups_np_complete(self):
        """Sum/count aggregates (Abelian groups) are NP-complete (row 7)."""
        assert (
            complexity_of(profile(Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5))
            == Complexity.NP_COMPLETE
        )

    def test_commutative_non_associative_is_ptime(self):
        assert complexity_of(profile(Axiom.A4)) == Complexity.PTIME

    def test_bare_magma_is_ptime(self):
        assert complexity_of(profile()) == Complexity.PTIME

    def test_quasigroup_rows(self):
        assert complexity_of(profile(Axiom.A5)) == Complexity.PTIME
        assert complexity_of(profile(Axiom.A2, Axiom.A5)) == Complexity.PTIME
        assert complexity_of(profile(Axiom.A3, Axiom.A5)) == Complexity.PTIME
        assert (
            complexity_of(profile(Axiom.A2, Axiom.A3, Axiom.A5))
            == Complexity.CONSTANT
        )

    def test_idempotent_divisible_associative_is_constant(self):
        assert (
            complexity_of(profile(Axiom.A1, Axiom.A3, Axiom.A5))
            == Complexity.CONSTANT
        )
        assert (
            complexity_of(
                profile(Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4, Axiom.A5)
            )
            == Complexity.CONSTANT
        )

    def test_open_cases_reported_unknown(self):
        """Rows 6-8 with A4=N are open per the paper."""
        assert complexity_of(profile(Axiom.A1)) == Complexity.UNKNOWN
        assert complexity_of(profile(Axiom.A1, Axiom.A2)) == Complexity.UNKNOWN
        assert complexity_of(profile(Axiom.A1, Axiom.A3)) == Complexity.UNKNOWN
        assert (
            complexity_of(profile(Axiom.A1, Axiom.A2, Axiom.A5))
            == Complexity.UNKNOWN
        )

    def test_row_for(self):
        assert row_for(SEMILATTICE_WITH_IDENTITY) is not None
        assert row_for(profile(Axiom.A1)) is None
