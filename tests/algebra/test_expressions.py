"""Tests for ⊕-expressions and A-equivalence under every axiom profile.

The soundness property tests evaluate expression pairs in concrete finite
magmas satisfying the assumed axioms: if the equivalence engine says two
expressions are equal under profile P, they must evaluate identically in
*every* magma satisfying P, for every variable assignment.
"""

from __future__ import annotations

from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.axioms import Axiom, AxiomProfile
from repro.algebra.expressions import (
    Op,
    Var,
    balanced,
    canonical_key,
    equivalent,
    expression_from_variables,
    leaf_sequence,
    right_deep,
    variables_of,
)
from repro.algebra.magmas import (
    FiniteMagma,
    cyclic_group,
    left_zero_band,
    min_semilattice,
    satisfied_axioms,
)
from repro.errors import AlgebraError

X, Y, Z, W = Var("x"), Var("y"), Var("z"), Var("w")

NONE = AxiomProfile()
A1 = AxiomProfile({Axiom.A1})
A3 = AxiomProfile({Axiom.A3})
A4 = AxiomProfile({Axiom.A4})
A1A3 = AxiomProfile({Axiom.A1, Axiom.A3})
A1A4 = AxiomProfile({Axiom.A1, Axiom.A4})
A3A4 = AxiomProfile({Axiom.A3, Axiom.A4})
SEMILATTICE = AxiomProfile({Axiom.A1, Axiom.A3, Axiom.A4})


class TestBasics:
    def test_variables_of(self):
        assert variables_of(Op(Op(X, Y), X)) == frozenset({"x", "y"})
        assert variables_of(Z) == frozenset({"z"})

    def test_leaf_sequence_in_order(self):
        assert leaf_sequence(Op(Op(X, Y), Z)) == ("x", "y", "z")
        assert leaf_sequence(Op(X, Op(Y, Z))) == ("x", "y", "z")
        assert leaf_sequence(Op(Z, Op(Y, X))) == ("z", "y", "x")

    def test_expression_from_variables_sorted_right_deep(self):
        expr = expression_from_variables(["c", "a", "b"])
        assert leaf_sequence(expr) == ("a", "b", "c")
        assert isinstance(expr, Op)
        assert isinstance(expr.right, Op)

    def test_expression_from_variables_requires_names(self):
        with pytest.raises(AlgebraError):
            expression_from_variables([])

    def test_right_deep_and_balanced_shapes(self):
        parts = [X, Y, Z, W]
        rd = right_deep(parts)
        assert leaf_sequence(rd) == ("x", "y", "z", "w")
        bal = balanced(parts)
        assert leaf_sequence(bal) == ("x", "y", "z", "w")
        assert isinstance(bal.left, Op) and isinstance(bal.right, Op)

    def test_combining_empty_raises(self):
        with pytest.raises(AlgebraError):
            right_deep([])
        with pytest.raises(AlgebraError):
            balanced([])


class TestEquivalencePerProfile:
    def test_no_axioms_syntactic(self):
        assert equivalent(Op(X, Y), Op(X, Y), NONE)
        assert not equivalent(Op(X, Y), Op(Y, X), NONE)
        assert not equivalent(Op(Op(X, Y), Z), Op(X, Op(Y, Z)), NONE)

    def test_commutative_only_swaps_children(self):
        assert equivalent(Op(X, Y), Op(Y, X), A4)
        assert equivalent(Op(Op(X, Y), Z), Op(Z, Op(Y, X)), A4)
        # But no reassociation.
        assert not equivalent(Op(Op(X, Y), Z), Op(X, Op(Y, Z)), A4)

    def test_idempotent_only_collapses_equal_children(self):
        assert equivalent(Op(X, X), X, A3)
        assert equivalent(Op(Op(X, X), Y), Op(X, Y), A3)
        assert not equivalent(Op(X, Y), Op(Y, X), A3)

    def test_idempotent_commutative_non_associative(self):
        profile = A3A4
        assert equivalent(Op(Op(X, Y), Op(Y, X)), Op(X, Y), profile)
        assert not equivalent(Op(Op(X, Y), Z), Op(X, Op(Y, Z)), profile)

    def test_associative_only_word_equality(self):
        assert equivalent(Op(Op(X, Y), Z), Op(X, Op(Y, Z)), A1)
        assert not equivalent(Op(X, Y), Op(Y, X), A1)
        assert not equivalent(Op(X, X), X, A1)

    def test_associative_commutative_multiset(self):
        assert equivalent(Op(Op(X, Y), Z), Op(Z, Op(Y, X)), A1A4)
        assert not equivalent(Op(X, Op(X, Y)), Op(X, Y), A1A4)

    def test_free_band_equalities(self):
        # xx = x, xyx is reduced (not equal to xy or yx), xyxy = xy.
        assert equivalent(Op(X, X), X, A1A3)
        assert equivalent(Op(Op(X, Y), Op(X, Y)), Op(X, Y), A1A3)
        assert not equivalent(Op(Op(X, Y), X), Op(X, Y), A1A3)
        assert not equivalent(Op(X, Y), Op(Y, X), A1A3)
        # The band identity xyx·yxy... : check x y x z x y x pattern vs
        # known equal forms: (xy)(yx) = xyx in the free band.
        lhs = Op(Op(X, Y), Op(Y, X))
        rhs = Op(X, Op(Y, X))
        assert equivalent(lhs, rhs, A1A3)

    def test_lemma_1_semilattice(self):
        """Equivalence iff equal variable sets (Lemma 1)."""
        e1 = Op(Op(X, Y), Z)
        e2 = Op(Z, Op(Y, Op(X, X)))
        assert equivalent(e1, e2, SEMILATTICE)
        assert not equivalent(e1, Op(X, Y), SEMILATTICE)

    def test_identity_axiom_is_equivalence_neutral(self):
        with_id = AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4})
        without = SEMILATTICE
        pairs = [
            (Op(X, Y), Op(Y, X)),
            (Op(Op(X, Y), Z), Op(X, Z)),
            (Op(X, X), X),
        ]
        for e1, e2 in pairs:
            assert equivalent(e1, e2, with_id) == equivalent(e1, e2, without)

    def test_divisibility_axiom_is_equivalence_neutral(self):
        group = AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A5})
        semigroup = A1
        pairs = [
            (Op(X, Y), Op(Y, X)),
            (Op(Op(X, Y), Z), Op(X, Op(Y, Z))),
            (Op(X, X), X),
        ]
        for e1, e2 in pairs:
            assert equivalent(e1, e2, group) == equivalent(e1, e2, semigroup)


def _evaluate(expr, magma: FiniteMagma, assignment):
    if isinstance(expr, Var):
        return assignment[expr.name]
    return magma.op(
        _evaluate(expr.left, magma, assignment),
        _evaluate(expr.right, magma, assignment),
    )


@st.composite
def small_expressions(draw, variables=("x", "y", "z")):
    depth = draw(st.integers(min_value=0, max_value=3))

    def build(d):
        if d == 0 or draw(st.booleans()) and d < 2:
            return Var(draw(st.sampled_from(variables)))
        return Op(build(d - 1), build(d - 1))

    return build(depth)


class TestSoundness:
    """Claimed equivalences must hold in concrete models of the axioms."""

    WITNESSES = {
        SEMILATTICE: [min_semilattice(4)],
        A1A3: [left_zero_band(3), min_semilattice(3)],
        A1: [cyclic_group(5), left_zero_band(3)],
        A1A4: [cyclic_group(5), min_semilattice(3)],
    }

    @settings(deadline=None, max_examples=60)
    @given(small_expressions(), small_expressions())
    def test_equivalence_sound_in_witnesses(self, e1, e2):
        for profile, magmas in self.WITNESSES.items():
            if not equivalent(e1, e2, profile):
                continue
            for magma in magmas:
                assert profile <= satisfied_axioms(magma)
                names = sorted(variables_of(e1) | variables_of(e2))
                for values in product(range(magma.order), repeat=len(names)):
                    assignment = dict(zip(names, values))
                    assert _evaluate(e1, magma, assignment) == _evaluate(
                        e2, magma, assignment
                    ), (profile, magma.name, e1, e2, assignment)

    @settings(deadline=None, max_examples=60)
    @given(small_expressions(), small_expressions())
    def test_canonical_key_is_equivalence_decision(self, e1, e2):
        for profile in (NONE, A1, A3, A4, A1A3, A1A4, A3A4, SEMILATTICE):
            assert equivalent(e1, e2, profile) == (
                canonical_key(e1, profile) == canonical_key(e2, profile)
            )

    @settings(deadline=None, max_examples=40)
    @given(small_expressions())
    def test_profiles_form_a_refinement_chain(self, e):
        """More axioms can only merge classes: semilattice equivalence is
        implied by A1+A4, A1+A3, and plain-A1 equivalence."""
        others = [Op(e, e), e]
        for other in others:
            for weaker, stronger in [
                (A1, A1A4),
                (A1A4, SEMILATTICE),
                (A1A3, SEMILATTICE),
                (NONE, A1),
                (NONE, A3),
                (NONE, A4),
            ]:
                if equivalent(e, other, weaker):
                    assert equivalent(e, other, stronger)
