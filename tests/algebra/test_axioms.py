"""Tests for axiom profiles and structure naming."""

from __future__ import annotations

from repro.algebra.axioms import (
    ASSOCIATIVITY,
    COMMUTATIVITY,
    DIVISIBILITY,
    IDEMPOTENCE,
    IDENTITY,
    Axiom,
    AxiomProfile,
    SEMILATTICE_WITH_IDENTITY,
    structure_names,
)


class TestAxiomProfile:
    def test_predicates(self):
        profile = AxiomProfile({Axiom.A1, Axiom.A4})
        assert profile.associative
        assert profile.commutative
        assert not profile.has_identity
        assert not profile.idempotent
        assert not profile.divisible

    def test_empty_profile_is_bare_magma(self):
        profile = AxiomProfile()
        assert not any(
            [
                profile.associative,
                profile.has_identity,
                profile.idempotent,
                profile.commutative,
                profile.divisible,
            ]
        )
        assert "magma" in repr(profile)

    def test_behaves_as_frozenset(self):
        profile = AxiomProfile({Axiom.A1})
        assert Axiom.A1 in profile
        assert profile <= AxiomProfile({Axiom.A1, Axiom.A2})

    def test_topk_profile(self):
        assert SEMILATTICE_WITH_IDENTITY == AxiomProfile(
            {ASSOCIATIVITY, IDENTITY, IDEMPOTENCE, COMMUTATIVITY}
        )
        assert DIVISIBILITY not in SEMILATTICE_WITH_IDENTITY

    def test_repr_sorted(self):
        profile = AxiomProfile({Axiom.A4, Axiom.A1})
        assert repr(profile) == "AxiomProfile(A1+A4)"


class TestStructureNames:
    def test_semigroup(self):
        assert structure_names(AxiomProfile({Axiom.A1})) == ["semigroup"]

    def test_monoid_includes_semigroup(self):
        names = structure_names(AxiomProfile({Axiom.A1, Axiom.A2}))
        assert names == ["monoid", "semigroup"]

    def test_group_chain(self):
        names = structure_names(AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A5}))
        assert names[0] == "group"
        assert "monoid" in names and "loop" in names and "quasigroup" in names

    def test_abelian_group_is_most_specific(self):
        profile = AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5})
        assert structure_names(profile)[0] == "Abelian group"

    def test_band_and_semilattice(self):
        assert structure_names(AxiomProfile({Axiom.A1, Axiom.A3}))[0] == "band"
        names = structure_names(AxiomProfile({Axiom.A1, Axiom.A3, Axiom.A4}))
        assert names[0] == "semilattice"
        assert "band" in names

    def test_quasigroup_and_loop(self):
        assert structure_names(AxiomProfile({Axiom.A5})) == ["quasigroup"]
        assert structure_names(AxiomProfile({Axiom.A2, Axiom.A5})) == [
            "loop",
            "quasigroup",
        ]

    def test_topk_profile_is_semilattice(self):
        names = structure_names(SEMILATTICE_WITH_IDENTITY)
        assert names[0] == "semilattice"

    def test_bare_magma_has_no_names(self):
        assert structure_names(AxiomProfile()) == []
