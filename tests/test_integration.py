"""Cross-module integration tests.

These tie the layers together: algebraic axioms hold for the concrete
top-k operator; A-equivalent expressions evaluate identically through
the executor; plan cost models agree with engine counters; the shared
sort feeds the threshold algorithm the same rankings the plan executor
computes when CTR factors are phrase-independent.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.axioms import Axiom, AxiomProfile
from repro.algebra.expressions import Op, Var, equivalent
from repro.core.topk import TopKList, top_k_merge
from repro.engine import SharedAuctionEngine
from repro.plans.cost import expected_plan_cost
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import SharedAggregationInstance
from repro.sharedsort import build_shared_sort_plan, threshold_top_k
from repro.workloads.generator import MarketConfig, generate_market

SEMILATTICE = AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A3, Axiom.A4})


def evaluate(expr, assignment, k):
    """Evaluate an ⊕-expression with top-k merge over TopKList values."""
    if isinstance(expr, Var):
        return assignment[expr.name]
    return top_k_merge(
        evaluate(expr.left, assignment, k), evaluate(expr.right, assignment, k)
    )


@st.composite
def expr_pairs(draw):
    names = ["x", "y", "z"]

    def build(depth):
        if depth == 0 or draw(st.booleans()):
            return Var(draw(st.sampled_from(names)))
        return Op(build(depth - 1), build(depth - 1))

    return build(draw(st.integers(1, 3))), build(draw(st.integers(1, 3)))


class TestAlgebraMeetsTopK:
    """Lemma 1 soundness for the *actual* operator: A-equivalent
    expressions evaluate to equal top-k lists."""

    @settings(
        deadline=None,
        max_examples=60,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(expr_pairs(), st.integers(min_value=1, max_value=3))
    def test_equivalent_expressions_equal_topk_values(self, pair, k):
        e1, e2 = pair
        rng = random.Random(7)
        assignment = {
            name: TopKList(
                k,
                [
                    (rng.uniform(0, 10), rng.randrange(8))
                    for _ in range(rng.randrange(4))
                ],
            )
            for name in "xyz"
        }
        if equivalent(e1, e2, SEMILATTICE):
            assert evaluate(e1, assignment, k) == evaluate(e2, assignment, k)


class TestPlanMeetsEngine:
    def test_plan_cost_tracks_engine_merges(self):
        """The engine's average merges per round converge to the plan's
        expected materialization cost."""
        market = generate_market(
            MarketConfig(
                num_categories=2,
                phrases_per_category=3,
                specialists_per_category=8,
                generalists=6,
                seed=3,
            )
        )
        engine = SharedAuctionEngine(
            market.advertisers,
            slot_factors=[0.3, 0.2],
            search_rates=market.search_rates,
            mode="shared",
            throttle=False,
            seed=4,
        )
        rounds = 400
        report = engine.run(rounds)
        assert engine._executor is not None
        expected = expected_plan_cost(engine._executor.plan)
        empirical = report.merges / rounds
        assert abs(empirical - expected) < 0.2 * max(1.0, expected)

    def test_executor_matches_engine_phrase_rankings(self):
        market = generate_market(
            MarketConfig(
                num_categories=2,
                phrases_per_category=2,
                specialists_per_category=6,
                generalists=4,
                seed=5,
            )
        )
        instance = SharedAggregationInstance.from_sets(
            {p: list(ids) for p, ids in market.phrase_advertisers.items()},
            market.search_rates,
        )
        plan = greedy_shared_plan(instance)
        executor = PlanExecutor(plan, 3)
        scores = {
            a.advertiser_id: a.bid * a.ctr_factor
            for a in market.advertisers
        }
        result = executor.run_round(scores)
        for phrase, ids in market.phrase_advertisers.items():
            if len(ids) < 2:
                continue
            expected = sorted(ids, key=lambda i: (-scores[i], i))[:3]
            assert list(result.answers[phrase].advertiser_ids()) == expected


class TestSharedSortMeetsPlans:
    def test_shared_sort_and_plan_executor_agree(self):
        """With phrase-independent CTR factors, the Section III pipeline
        (shared sort + TA per phrase) must produce the same rankings as
        the Section II pipeline (shared top-k plan)."""
        phrases = {
            "a": [1, 2, 3, 4, 5, 6],
            "b": [1, 2, 3, 7, 8],
            "c": [4, 5, 6, 7],
        }
        rng = random.Random(11)
        bids = {i: round(rng.uniform(0.5, 9.5), 2) for i in range(1, 9)}
        factors = {i: round(rng.uniform(0.4, 1.6), 3) for i in range(1, 9)}
        k = 3

        # Section II route.
        instance = SharedAggregationInstance.from_sets(phrases)
        executor = PlanExecutor(greedy_shared_plan(instance), k)
        plan_result = executor.run_round(
            {i: bids[i] * factors[i] for i in range(1, 9)}
        )

        # Section III route: sort by bids, TA with c_i random access.
        sort_plan = build_shared_sort_plan(phrases, 1.0)
        live = sort_plan.instantiate(bids)
        for phrase, ads in phrases.items():
            ctr_order = sorted(ads, key=lambda i: (-factors[i], i))
            ta = threshold_top_k(
                k, live.stream_for_phrase(phrase), ctr_order, bids, factors
            )
            assert (
                ta.ranking.advertiser_ids()
                == plan_result.answers[phrase].advertiser_ids()
            )


class TestEndToEndDeterminism:
    def test_same_seed_same_world(self):
        market = generate_market(MarketConfig(seed=8))
        runs = []
        for _ in range(2):
            engine = SharedAuctionEngine(
                market.advertisers,
                slot_factors=[0.3, 0.2],
                search_rates=market.search_rates,
                seed=21,
            )
            runs.append(engine.run(25))
        assert runs[0].revenue_cents == runs[1].revenue_cents
        assert runs[0].merges == runs[1].merges
        assert runs[0].scans == runs[1].scans
