"""Tests for the Hoeffding bound engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.budgets.hoeffding import (
    Interval,
    expected_masked_sum_bounds,
    prob_sum_less_than,
    throttled_bid_bounds,
)
from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from repro.errors import BudgetError
from tests.conftest import throttle_ads


def exact_prob_less(ads, x):
    total = 0.0
    for mask in range(1 << len(ads)):
        probability = 1.0
        spent = 0
        for index, (price, ctr) in enumerate(ads):
            if mask >> index & 1:
                probability *= ctr
                spent += price
            else:
                probability *= 1.0 - ctr
        if spent < x:
            total += probability
    return total


def exact_masked_expectation(ads, x, y):
    total = 0.0
    for mask in range(1 << len(ads)):
        probability = 1.0
        spent = 0
        for index, (price, ctr) in enumerate(ads):
            if mask >> index & 1:
                probability *= ctr
                spent += price
            else:
                probability *= 1.0 - ctr
        if x <= spent < y:
            total += probability * spent
    return total


class TestInterval:
    def test_invalid_rejected(self):
        with pytest.raises(BudgetError):
            Interval(2.0, 1.0)

    def test_width_and_midpoint(self):
        interval = Interval(1.0, 3.0)
        assert interval.width == 2.0
        assert interval.midpoint == 2.0

    def test_arithmetic(self):
        a, b = Interval(1.0, 2.0), Interval(0.5, 1.0)
        assert (a + b).lo == 1.5 and (a + b).hi == 3.0
        assert (a - b).lo == 0.0 and (a - b).hi == 1.5
        assert a.scale(2.0).hi == 4.0

    def test_scale_rejects_negative(self):
        with pytest.raises(BudgetError):
            Interval(0.0, 1.0).scale(-1.0)

    def test_clamp(self):
        assert Interval(-0.5, 1.5).clamp(0.0, 1.0) == Interval(0.0, 1.0)
        assert Interval(2.0, 3.0).clamp(0.0, 1.0) == Interval(1.0, 1.0)

    def test_definitely_less_than(self):
        assert Interval(0.0, 1.0).definitely_less_than(Interval(2.0, 3.0))
        assert not Interval(0.0, 2.5).definitely_less_than(Interval(2.0, 3.0))

    def test_contains(self):
        assert 1.0 in Interval(0.5, 1.5)
        assert 2.0 not in Interval(0.5, 1.5)


class TestProbBounds:
    def test_edge_cases(self):
        ads = ((10, 0.5),)
        assert prob_sum_less_than(ads, 0.0) == Interval(0.0, 0.0)
        assert prob_sum_less_than(ads, 11.0) == Interval(1.0, 1.0)
        assert prob_sum_less_than((), 1.0) == Interval(1.0, 1.0)

    @settings(deadline=None, max_examples=100)
    @given(
        ads=throttle_ads(max_ads=5),
        x=st.floats(min_value=-10.0, max_value=300.0, allow_nan=False),
        depth=st.integers(min_value=0, max_value=5),
    )
    def test_bounds_contain_exact_probability(self, ads, x, depth):
        ads = tuple(sorted(ads))
        interval = prob_sum_less_than(ads, x, depth)
        assert 0.0 <= interval.lo <= interval.hi <= 1.0
        assert exact_prob_less(ads, x) in interval

    @settings(deadline=None, max_examples=60)
    @given(
        ads=throttle_ads(max_ads=5),
        x=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    )
    def test_full_expansion_is_exact(self, ads, x):
        ads = tuple(sorted(ads))
        interval = prob_sum_less_than(ads, x, len(ads))
        assert interval.width < 1e-9
        assert interval.midpoint == pytest.approx(
            exact_prob_less(ads, x), abs=1e-9
        )

    @settings(deadline=None, max_examples=60)
    @given(
        ads=throttle_ads(max_ads=5),
        x=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    )
    def test_deeper_expansion_never_loosens_much(self, ads, x):
        """Expansion should tighten bounds up to floating-point noise.

        (Strict monotonicity is not guaranteed pointwise because the
        Hoeffding term re-applies to a different remainder, but the exact
        value stays inside and full depth collapses the interval; here we
        check width at full depth <= width at depth 0.)"""
        ads = tuple(sorted(ads))
        shallow = prob_sum_less_than(ads, x, 0)
        deep = prob_sum_less_than(ads, x, len(ads))
        assert deep.width <= shallow.width + 1e-9


class TestMaskedExpectationBounds:
    @settings(deadline=None, max_examples=100)
    @given(
        ads=throttle_ads(max_ads=5),
        x=st.floats(min_value=0.0, max_value=150.0, allow_nan=False),
        span=st.floats(min_value=0.1, max_value=150.0, allow_nan=False),
        depth=st.integers(min_value=0, max_value=5),
    )
    def test_bounds_contain_exact_value(self, ads, x, span, depth):
        ads = tuple(sorted(ads))
        y = x + span
        interval = expected_masked_sum_bounds(ads, x, y, depth)
        assert exact_masked_expectation(ads, x, y) in interval

    def test_empty_range(self):
        assert expected_masked_sum_bounds(((5, 0.5),), 3.0, 3.0) == Interval(
            0.0, 0.0
        )


class TestThrottledBidBounds:
    @settings(deadline=None, max_examples=100)
    @given(
        bid=st.integers(min_value=0, max_value=50),
        budget=st.integers(min_value=0, max_value=200),
        auctions=st.integers(min_value=1, max_value=4),
        ads=throttle_ads(max_ads=5),
        depth=st.integers(min_value=0, max_value=5),
    )
    def test_bounds_contain_exact_bid(self, bid, budget, auctions, ads, depth):
        problem = ThrottleProblem(bid, budget, auctions, ads)
        interval = throttled_bid_bounds(problem, depth)
        exact = exact_throttled_bid(problem)
        assert exact >= interval.lo - 1e-6
        assert exact <= interval.hi + 1e-6
        assert 0.0 <= interval.lo and interval.hi <= bid + 1e-9

    @settings(deadline=None, max_examples=60)
    @given(
        bid=st.integers(min_value=0, max_value=50),
        budget=st.integers(min_value=0, max_value=200),
        auctions=st.integers(min_value=1, max_value=4),
        ads=throttle_ads(max_ads=5),
    )
    def test_full_depth_collapses(self, bid, budget, auctions, ads):
        problem = ThrottleProblem(bid, budget, auctions, ads)
        interval = throttled_bid_bounds(problem, len(problem.outstanding))
        assert interval.width < 1e-6
        assert interval.midpoint == pytest.approx(
            exact_throttled_bid(problem), abs=1e-6
        )

    def test_trivially_unthrottled_is_point(self):
        problem = ThrottleProblem(10, 10_000, 2, [(5, 0.5)])
        assert throttled_bid_bounds(problem, 0) == Interval(10.0, 10.0)
