"""Tests for outstanding ads, decay models, and the ledger."""

from __future__ import annotations

import pytest

from repro.budgets.outstanding import (
    ExponentialDecay,
    GeometricDecay,
    NoDecay,
    OutstandingAd,
    OutstandingLedger,
)
from repro.errors import BudgetError


class TestDecayModels:
    def test_no_decay_constant_until_horizon(self):
        decay = NoDecay(horizon=5)
        assert decay.probability(0.4, 0) == 0.4
        assert decay.probability(0.4, 4) == 0.4
        assert decay.probability(0.4, 5) == 0.0

    def test_geometric_halves(self):
        decay = GeometricDecay(ratio=0.5, horizon=10)
        assert decay.probability(0.8, 0) == pytest.approx(0.8)
        assert decay.probability(0.8, 2) == pytest.approx(0.2)
        assert decay.probability(0.8, 10) == 0.0

    def test_geometric_validation(self):
        with pytest.raises(BudgetError):
            GeometricDecay(ratio=1.5)
        with pytest.raises(BudgetError):
            GeometricDecay(horizon=0)

    def test_exponential_decreases(self):
        decay = ExponentialDecay(rate=0.5, horizon=8)
        values = [decay.probability(1.0, t) for t in range(8)]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert decay.probability(1.0, 8) == 0.0

    def test_exponential_validation(self):
        with pytest.raises(BudgetError):
            ExponentialDecay(rate=-1.0)
        with pytest.raises(BudgetError):
            ExponentialDecay(horizon=-1)


class TestOutstandingAd:
    def test_validation(self):
        with pytest.raises(BudgetError):
            OutstandingAd(-1, 0.5)
        with pytest.raises(BudgetError):
            OutstandingAd(10, 1.5)

    def test_current_ctr_applies_decay(self):
        ad = OutstandingAd(100, 0.6, displayed_round=2)
        decay = GeometricDecay(ratio=0.5, horizon=10)
        assert ad.current_ctr(decay, 2) == pytest.approx(0.6)
        assert ad.current_ctr(decay, 4) == pytest.approx(0.15)

    def test_current_ctr_clamps_negative_elapsed(self):
        ad = OutstandingAd(100, 0.6, displayed_round=5)
        assert ad.current_ctr(NoDecay(), 3) == pytest.approx(0.6)


class TestLedger:
    def test_record_and_snapshot(self):
        ledger = OutstandingLedger()
        ledger.record_display(100, 0.5, 0)
        ledger.record_display(50, 0.2, 1)
        assert len(ledger) == 2
        assert ledger.snapshot(1) == [(100, 0.5), (50, 0.2)]

    def test_resolve_removes_ad(self):
        ledger = OutstandingLedger()
        ad = ledger.record_display(100, 0.5, 0)
        ledger.resolve(ad)
        assert len(ledger) == 0

    def test_resolve_unknown_raises(self):
        ledger = OutstandingLedger()
        ad = OutstandingAd(10, 0.1)
        with pytest.raises(BudgetError):
            ledger.resolve(ad)

    def test_prune_drops_expired(self):
        ledger = OutstandingLedger(decay=GeometricDecay(ratio=0.5, horizon=3))
        ledger.record_display(100, 0.5, 0)
        ledger.record_display(100, 0.5, 5)
        dropped = ledger.prune(6)
        assert dropped == 1
        assert len(ledger) == 1

    def test_snapshot_omits_zero_probability(self):
        ledger = OutstandingLedger(decay=NoDecay(horizon=2))
        ledger.record_display(100, 0.5, 0)
        assert ledger.snapshot(0) == [(100, 0.5)]
        assert ledger.snapshot(2) == []

    def test_liability_accessors(self):
        ledger = OutstandingLedger()
        ledger.record_display(100, 0.5, 0)
        ledger.record_display(60, 0.25, 0)
        assert ledger.max_liability_cents(0) == 160
        assert ledger.expected_liability_cents(0) == pytest.approx(65.0)
