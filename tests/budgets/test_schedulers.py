"""Tests for refinement scheduling policies.

Schedulers may only change how much refinement work a comparison does --
every policy must produce the exact same ordering as exact computation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.budgets.comparison import BoundedBid, compare_throttled_bids
from repro.budgets.schedulers import (
    NAMED_SCHEDULERS,
    largest_price_first,
    most_uncertain_mass,
    round_robin,
    widest_first,
)
from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from tests.conftest import throttle_ads


def bounded(advertiser_id, bid, budget, auctions=2, ads=()):
    return BoundedBid(
        advertiser_id, ThrottleProblem(bid, budget, auctions, ads)
    )


class TestSchedulerMechanics:
    def test_round_robin_alternates(self):
        a = bounded(1, 20, 30, 2, [(10, 0.5), (5, 0.5)])
        b = bounded(2, 20, 30, 2, [(10, 0.5), (5, 0.5)])
        assert round_robin(a, b, 0) is a
        assert round_robin(a, b, 1) is b

    def test_widest_first_picks_wider(self):
        wide = bounded(1, 30, 40, 2, [(20, 0.5), (15, 0.5), (10, 0.5)])
        narrow = bounded(2, 30, 10_000, 2, [(1, 0.5)])
        assert widest_first(wide, narrow, 0) is wide

    def test_largest_price_first_reads_expansion_order(self):
        big_prices = bounded(1, 20, 30, 2, [(5, 0.5), (50, 0.5)])
        small_prices = bounded(2, 20, 30, 2, [(5, 0.5), (6, 0.5)])
        assert largest_price_first(big_prices, small_prices, 0) is big_prices

    def test_most_uncertain_mass_prefers_loaded_contender(self):
        loaded = bounded(1, 20, 30, 2, [(30, 0.5), (30, 0.5)])
        light = bounded(2, 20, 10_000, 2, [(1, 0.5)])
        assert most_uncertain_mass(loaded, light, 0) is loaded

    def test_named_registry_complete(self):
        assert set(NAMED_SCHEDULERS) == {
            "widest-first",
            "round-robin",
            "largest-price-first",
            "most-uncertain-mass",
        }


class TestSchedulersAreExact:
    @settings(deadline=None, max_examples=40)
    @given(
        a_ads=throttle_ads(max_ads=4),
        b_ads=throttle_ads(max_ads=4),
        a_bid=st.integers(min_value=1, max_value=40),
        b_bid=st.integers(min_value=1, max_value=40),
        budget=st.integers(min_value=5, max_value=120),
    )
    def test_every_scheduler_matches_exact_order(
        self, a_ads, b_ads, a_bid, b_bid, budget
    ):
        exact_a = exact_throttled_bid(
            ThrottleProblem(a_bid, budget, 2, a_ads)
        )
        exact_b = exact_throttled_bid(
            ThrottleProblem(b_bid, budget, 2, b_ads)
        )
        if abs(exact_a - exact_b) > 1e-6:
            want = 1 if exact_a > exact_b else -1
        else:
            want = 1  # id tie-break: advertiser 1 < advertiser 2
        for name, scheduler in NAMED_SCHEDULERS.items():
            a = bounded(1, a_bid, budget, 2, a_ads)
            b = bounded(2, b_bid, budget, 2, b_ads)
            got = compare_throttled_bids(a, b, scheduler=scheduler)
            assert got == want, name

    def test_schedulers_can_differ_in_work(self):
        """On an asymmetric pair, policies spend different refinement
        budgets (that is the whole point of scheduling)."""
        specs = dict(
            a_args=(1, 35, 60, 2, [(40, 0.5), (3, 0.5), (2, 0.5), (2, 0.4)]),
            b_args=(2, 34, 60, 2, [(4, 0.5), (4, 0.5), (4, 0.5), (30, 0.5)]),
        )
        work = {}
        for name, scheduler in NAMED_SCHEDULERS.items():
            a = bounded(*specs["a_args"])
            b = bounded(*specs["b_args"])
            compare_throttled_bids(a, b, scheduler=scheduler)
            work[name] = a.refinements + b.refinements
        assert len(set(work.values())) > 1, work
