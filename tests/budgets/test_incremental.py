"""Unit tests for the change-feed-driven incremental throttle cache."""

from __future__ import annotations

import random

import pytest

from repro.budgets.incremental import IncrementalThrottleCache
from repro.budgets.outstanding import GeometricDecay
from repro.budgets.throttle import exact_throttled_bid
from repro.engine.budget_manager import BudgetManager
from repro.engine.changefeed import AdvertiserRemoved, ChangeFeed
from repro.errors import BudgetError


def make_cache(budgets, decay=None, verify=False, memoize=True):
    """A manager publishing to a feed, with a cache subscribed to it."""
    feed = ChangeFeed()
    manager = BudgetManager(budgets, decay=decay, changefeed=feed)
    cache = IncrementalThrottleCache(manager, verify=verify, memoize=memoize)
    if memoize:
        cache.connect(feed)
    return manager, cache, feed


def fresh_bid(manager, advertiser_id, bid_cents, num_auctions, round_index):
    """The uncached reference value on the manager's current books."""
    return exact_throttled_bid(
        manager.throttle_problem(
            advertiser_id, bid_cents, num_auctions, round_index
        )
    )


class TestEntryLifecycle:
    def test_exact_bid_matches_uncached_float_identically(self):
        manager, cache, _ = make_cache({1: 300})
        manager.record_display(1, 90, 0.7, 0)
        manager.record_display(1, 80, 0.4, 0)
        cached = cache.exact_bid(1, 120, 3, 0)
        assert cached == fresh_bid(manager, 1, 120, 3, 0)

    def test_clean_advertiser_reuses(self):
        manager, cache, _ = make_cache({1: 300})
        manager.record_display(1, 90, 0.7, 0)
        first = cache.exact_bid(1, 120, 3, 0)
        second = cache.exact_bid(1, 120, 3, 0)
        assert first == second
        assert cache.stats.problems_rebuilt == 1
        assert cache.stats.problems_reused == 1
        # The DP ran once; the reuse served the memoized value.
        assert cache.stats.exact_fallbacks == 1

    def test_display_settle_and_expiry_each_invalidate(self):
        manager, cache, _ = make_cache(
            {1: 300}, decay=GeometricDecay(ratio=1.0, horizon=4)
        )
        handle = manager.record_display(1, 90, 0.7, 0)
        cache.exact_bid(1, 120, 3, 0)

        manager.record_display(1, 80, 0.4, 0)  # display dirties
        assert cache.exact_bid(1, 120, 3, 0) == fresh_bid(manager, 1, 120, 3, 0)

        manager.settle_click(1, 90, 0, handle=handle)  # settlement dirties
        assert cache.exact_bid(1, 120, 3, 0) == fresh_bid(manager, 1, 120, 3, 0)

        manager.expire_outstanding(10)  # expiry dirties
        assert cache.exact_bid(1, 120, 3, 10) == fresh_bid(
            manager, 1, 120, 3, 10
        )
        assert cache.stats.invalidations == 3
        assert cache.stats.problems_rebuilt == 4
        assert cache.stats.problems_reused == 0

    def test_key_change_rebuilds_without_event(self):
        manager, cache, _ = make_cache({1: 300})
        manager.record_display(1, 90, 0.7, 0)
        cache.exact_bid(1, 120, 3, 0)
        # A different bid or multiplicity is a different problem even
        # though no event fired: the key carries it.
        assert cache.exact_bid(1, 110, 3, 0) == fresh_bid(manager, 1, 110, 3, 0)
        assert cache.exact_bid(1, 110, 5, 0) == fresh_bid(manager, 1, 110, 5, 0)
        assert cache.stats.problems_rebuilt == 3
        assert cache.stats.problems_reused == 0

    def test_unconnected_memoized_cache_refuses_to_serve(self):
        manager = BudgetManager({1: 300})
        cache = IncrementalThrottleCache(manager)
        with pytest.raises(BudgetError, match="connect"):
            cache.exact_bid(1, 120, 3, 0)

    def test_memoize_false_never_reuses_and_needs_no_feed(self):
        manager = BudgetManager({1: 300})
        manager.record_display(1, 90, 0.7, 0)
        cache = IncrementalThrottleCache(manager, memoize=False)
        for _ in range(3):
            assert cache.exact_bid(1, 120, 3, 0) == fresh_bid(
                manager, 1, 120, 3, 0
            )
        assert cache.stats.problems_rebuilt == 3
        assert cache.stats.problems_reused == 0
        assert cache.cached_advertisers() == 0

    def test_advertiser_removed_evicts(self):
        manager, cache, feed = make_cache({1: 300})
        manager.record_display(1, 90, 0.7, 0)
        cache.exact_bid(1, 120, 3, 0)
        assert cache.cached_advertisers() == 1
        feed.publish(AdvertiserRemoved(1))
        cache.drain()
        assert cache.cached_advertisers() == 0


class TestRoundScoping:
    def test_no_decay_entries_survive_across_rounds(self):
        manager, cache, _ = make_cache({1: 300})
        manager.record_display(1, 90, 0.7, 0)
        assert not manager.decay_varies
        cache.exact_bid(1, 120, 3, 0)
        # No event between rounds: under NoDecay the snapshot cannot
        # have moved, so round 5 reuses the round-0 entry.
        assert cache.exact_bid(1, 120, 3, 5) == fresh_bid(manager, 1, 120, 3, 5)
        assert cache.stats.problems_reused == 1

    def test_varying_decay_scopes_entries_to_their_round(self):
        manager, cache, _ = make_cache(
            {1: 300}, decay=GeometricDecay(ratio=0.5, horizon=32)
        )
        manager.record_display(1, 90, 0.8, 0)
        assert manager.decay_varies
        cache.exact_bid(1, 120, 3, 0)
        assert cache.exact_bid(1, 120, 3, 0) == fresh_bid(manager, 1, 120, 3, 0)
        assert cache.stats.problems_reused == 1
        # A later round re-weighs the debt with no covering event; the
        # cache must rebuild rather than serve the round-0 snapshot.
        round_3 = cache.exact_bid(1, 120, 3, 3)
        assert round_3 == fresh_bid(manager, 1, 120, 3, 3)
        assert cache.stats.problems_rebuilt == 2

    def test_varying_decay_values_actually_differ_across_rounds(self):
        # The scoping rule above matters because the same books yield
        # different b-hat at different rounds under decay.
        manager, cache, _ = make_cache(
            {1: 200}, decay=GeometricDecay(ratio=0.5, horizon=32)
        )
        manager.record_display(1, 90, 0.8, 0)
        assert cache.exact_bid(1, 120, 3, 0) != cache.exact_bid(1, 120, 3, 3)


class TestVerifyMode:
    def test_sound_feed_passes_verification(self):
        manager, cache, _ = make_cache({1: 300}, verify=True)
        handle = manager.record_display(1, 90, 0.7, 0)
        for _ in range(2):
            assert cache.exact_bid(1, 120, 3, 0) == fresh_bid(
                manager, 1, 120, 3, 0
            )
        manager.settle_click(1, 90, 0, handle=handle)
        for _ in range(2):
            assert cache.exact_bid(1, 120, 3, 0) == fresh_bid(
                manager, 1, 120, 3, 0
            )

    def test_undeclared_book_movement_is_caught(self):
        manager, cache, _ = make_cache({1: 300}, verify=True)
        manager.record_display(1, 90, 0.7, 0)
        cache.exact_bid(1, 120, 3, 0)
        # Mutate the ledger behind the feed's back: the entry still
        # looks clean, so the next access takes the reuse path and the
        # verify cross-check must blow up.
        manager._ledger(1).record_display(80, 0.4, 0)
        with pytest.raises(BudgetError, match="unsound change feed"):
            cache.exact_bid(1, 120, 3, 0)


class TestWorkAccounting:
    def test_trivial_problems_are_not_exact_fallbacks(self):
        # A deep budget makes the problem trivially unthrottled: the
        # quick test answers for free and honest accounting must not
        # claim a DP ran.
        manager, cache, _ = make_cache({1: 100_000})
        manager.record_display(1, 90, 0.7, 0)
        assert cache.exact_bid(1, 120, 3, 0) == 120.0
        assert cache.stats.exact_fallbacks == 0

    def test_zero_bid_is_not_an_exact_fallback(self):
        manager, cache, _ = make_cache({1: 0})
        assert cache.exact_bid(1, 120, 3, 0) == 0.0
        assert cache.stats.exact_fallbacks == 0

    def test_nontrivial_problem_counts_one_fallback(self):
        manager, cache, _ = make_cache({1: 150})
        manager.record_display(1, 90, 0.7, 0)
        cache.exact_bid(1, 120, 3, 0)
        assert cache.stats.exact_fallbacks == 1


class TestSelectTop:
    def _throttled_population(self, seed, count):
        """A manager with ``count`` advertisers carrying real debt."""
        rng = random.Random(seed)
        budgets = {}
        specs = []
        feed = ChangeFeed()
        for advertiser_id in range(count):
            budgets[advertiser_id] = rng.randint(120, 400)
        manager = BudgetManager(budgets, changefeed=feed)
        cache = IncrementalThrottleCache(manager)
        cache.connect(feed)
        for advertiser_id in range(count):
            for _ in range(rng.randint(0, 3)):
                manager.record_display(
                    advertiser_id,
                    rng.randint(40, 120),
                    rng.uniform(0.1, 0.9),
                    0,
                )
            specs.append(
                (
                    advertiser_id,
                    rng.randint(60, 140),
                    rng.randint(1, 4),
                    round(rng.uniform(0.2, 1.4), 3),
                )
            )
        return manager, cache, specs

    def _exact_ranking(self, manager, specs):
        """Brute force: every b-hat exactly, engine order."""
        scored = []
        for advertiser_id, bid_cents, num_auctions, factor in specs:
            value = fresh_bid(manager, advertiser_id, bid_cents, num_auctions, 0)
            scored.append((advertiser_id, value, value / 100.0 * factor))
        scored.sort(key=lambda row: (-row[2], row[0]))
        return scored

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_exact_ranking(self, seed):
        manager, cache, specs = self._throttled_population(seed, 24)
        k = 4
        selected = cache.select_top(specs, k, 0)
        assert selected == self._exact_ranking(manager, specs)[:k]

    def test_k_beyond_population_returns_everyone_ranked(self):
        manager, cache, specs = self._throttled_population(99, 5)
        selected = cache.select_top(specs, 50, 0)
        assert selected == self._exact_ranking(manager, specs)

    def test_k_must_be_positive(self):
        _, cache, _ = make_cache({1: 300})
        with pytest.raises(BudgetError):
            cache.select_top([(1, 100, 1, 1.0)], 0, 0)

    def test_exact_ties_break_by_lower_id(self):
        manager, cache, _ = make_cache({3: 200, 7: 200})
        for advertiser_id in (3, 7):
            manager.record_display(advertiser_id, 90, 0.5, 0)
        selected = cache.select_top(
            [(7, 120, 2, 0.8), (3, 120, 2, 0.8)], 2, 0
        )
        assert [advertiser_id for advertiser_id, _, _ in selected] == [3, 7]

    def test_selection_resolves_fewer_than_everyone(self):
        # The point of bound-driven selection: on a spread-out field
        # most contenders are rejected from depth-0 bounds and never
        # pay the exact DP.
        manager, cache, specs = self._throttled_population(5, 40)
        cache.select_top(specs, 3, 0)
        resolved = sum(
            1
            for entry in cache._entries.values()
            if entry.exact_value is not None
        )
        assert 0 < resolved < len(specs)
        assert cache.stats.exact_fallbacks < len(specs)
        assert cache.stats.bounds_comparisons > 0

    def test_selection_values_are_memoized_across_calls(self):
        manager, cache, specs = self._throttled_population(11, 12)
        first = cache.select_top(specs, 4, 0)
        fallbacks_after_first = cache.stats.exact_fallbacks
        second = cache.select_top(specs, 4, 0)
        assert first == second
        # Clean books: the second pass reuses every entry and runs no
        # new exact computations.
        assert cache.stats.exact_fallbacks == fallbacks_after_first
        assert cache.stats.problems_reused >= len(specs)
