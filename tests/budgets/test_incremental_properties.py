"""Property and model-based tests for the incremental throttle layer.

Two lockdowns:

- *Bound soundness at every depth*: the running intersection a
  :class:`repro.budgets.comparison.BoundedBid` maintains is monotone
  tightening by construction, and the exact ``b̂`` stays inside it at
  every refinement depth.  This is the property that makes bound-driven
  selection decisions sound: a separation observed at any depth is a
  separation of the exact values.

- *Cache coherence under arbitrary traffic*: a hypothesis state machine
  drives random display/settle/expiry/round traffic through a
  :class:`repro.engine.budget_manager.BudgetManager` publishing to the
  change feed, and after every step the cached ``b̂`` must equal a
  freshly computed one -- the same float, under a *varying* decay model
  (the hardest scoping case) and with ``verify=True`` so any undeclared
  movement raises instead of silently serving stale bids.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.budgets.comparison import BoundedBid
from repro.budgets.incremental import IncrementalThrottleCache
from repro.budgets.outstanding import GeometricDecay
from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from repro.engine.budget_manager import BudgetManager
from repro.engine.changefeed import ChangeFeed
from tests.conftest import throttle_ads


class TestBoundedRefinementSoundness:
    @given(
        ads=throttle_ads(),
        bid=st.integers(min_value=0, max_value=150),
        budget=st.integers(min_value=0, max_value=400),
        auctions=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=150, deadline=None)
    def test_intersection_tightens_and_contains_exact_at_every_depth(
        self, ads, bid, budget, auctions
    ):
        problem = ThrottleProblem(
            bid_cents=min(bid, budget),
            budget_cents=budget,
            num_auctions=auctions,
            outstanding=ads,
        )
        exact = exact_throttled_bid(problem)
        bounded = BoundedBid(0, problem)
        previous = bounded.bounds
        assert exact in previous
        while bounded.refine():
            current = bounded.bounds
            # The running intersection can only shrink -- exactly, not
            # merely up to tolerance: lo is a max, hi is a min.
            assert current.lo >= previous.lo
            assert current.hi <= previous.hi
            assert exact in current
            previous = current
        # Full expansion pins the value.
        assert bounded.exact
        assert abs(bounded.bounds.midpoint - exact) <= 1e-6

    @given(
        ads=throttle_ads(),
        bid=st.integers(min_value=1, max_value=150),
        budget=st.integers(min_value=1, max_value=400),
        auctions=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_collapse_adopts_the_exact_value(self, ads, bid, budget, auctions):
        problem = ThrottleProblem(
            bid_cents=min(bid, budget),
            budget_cents=budget,
            num_auctions=auctions,
            outstanding=ads,
        )
        exact = exact_throttled_bid(problem)
        bounded = BoundedBid(0, problem)
        bounded.collapse(exact)
        assert bounded.exact
        assert bounded.bounds.lo == exact
        assert bounded.bounds.hi == exact


class CachedThrottleMachine(RuleBasedStateMachine):
    """Random book traffic; the cached b̂ must always equal a fresh one.

    The machine runs the hardest configuration on purpose: a varying
    decay model (entries are only valid within their build round) and
    ``verify=True`` (every reuse cross-checks the rebuilt problem, so an
    event the budget manager failed to publish becomes a hard error
    rather than a silently stale bid).
    """

    ADVERTISERS = (1, 2)
    BID_CENTS = 100
    NUM_AUCTIONS = 2

    def __init__(self) -> None:
        super().__init__()
        self.feed = ChangeFeed()
        self.manager = BudgetManager(
            {1: 500, 2: 350},
            decay=GeometricDecay(ratio=0.7, horizon=8),
            changefeed=self.feed,
        )
        self.cache = IncrementalThrottleCache(self.manager, verify=True)
        self.cache.connect(self.feed)
        self.round_index = 0
        self.live_handles: list[tuple[int, int, int, int]] = []

    @rule(
        advertiser=st.sampled_from(ADVERTISERS),
        price=st.integers(min_value=1, max_value=120),
        ctr=st.floats(min_value=0.05, max_value=0.95),
    )
    def display(self, advertiser: int, price: int, ctr: float) -> None:
        handle = self.manager.record_display(
            advertiser, price, ctr, self.round_index
        )
        self.live_handles.append((advertiser, price, self.round_index, handle))

    @rule(data=st.data())
    def settle(self, data) -> None:
        if not self.live_handles:
            return
        index = data.draw(
            st.integers(min_value=0, max_value=len(self.live_handles) - 1)
        )
        advertiser, price, shown_round, handle = self.live_handles.pop(index)
        self.manager.settle_click(advertiser, price, shown_round, handle=handle)

    @rule()
    def advance_round(self) -> None:
        # Mirrors the engine's stage 1: expiry runs before any scoring
        # in the new round, publishing for every pruned advertiser.
        self.round_index += 1
        self.manager.expire_outstanding(self.round_index)

    @invariant()
    def cached_bid_equals_fresh_bid(self) -> None:
        for advertiser in self.ADVERTISERS:
            cached = self.cache.exact_bid(
                advertiser, self.BID_CENTS, self.NUM_AUCTIONS, self.round_index
            )
            fresh = exact_throttled_bid(
                self.manager.throttle_problem(
                    advertiser,
                    self.BID_CENTS,
                    self.NUM_AUCTIONS,
                    self.round_index,
                )
            )
            assert cached == fresh


CachedThrottleMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestCachedThrottleMachine = CachedThrottleMachine.TestCase
