"""E5: the Section IV gaming attack and its mitigation by throttling."""

from __future__ import annotations

import pytest

from repro.budgets.gaming import GamingAdvertiser, simulate_gaming
from repro.errors import BudgetError


def attack_population():
    """A nearly exhausted attacker against deep-pocketed competitors."""
    attacker = GamingAdvertiser(0, bid_cents=100, budget_cents=150, ctr=0.5)
    honest = [
        GamingAdvertiser(i, bid_cents=80, budget_cents=100_000, ctr=0.5)
        for i in range(1, 4)
    ]
    return [attacker] + honest


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(BudgetError):
            simulate_gaming(attack_population(), 1, 1, 1, "magic", 0)

    def test_negative_delay_rejected(self):
        with pytest.raises(BudgetError):
            simulate_gaming(attack_population(), 1, 1, -1, "naive", 0)

    def test_bad_ctr_rejected(self):
        with pytest.raises(BudgetError):
            GamingAdvertiser(0, 1, 1, 1.5)


class TestAttack:
    @pytest.fixture(scope="class")
    def reports(self):
        kwargs = dict(
            rounds=60, auctions_per_round=5, click_delay_rounds=3, seed=42
        )
        return {
            policy: simulate_gaming(attack_population(), policy=policy, **kwargs)
            for policy in ("naive", "throttled")
        }

    def test_naive_forgives_clicks(self, reports):
        assert reports["naive"].forgiven_cents > 0
        assert reports["naive"].free_clicks[0] > 0

    def test_attacker_overshoots_budget_under_naive(self, reports):
        naive = reports["naive"]
        clicks_value = (
            naive.paid_clicks[0] + naive.free_clicks[0]
        )
        # The attacker received strictly more click value than it paid:
        # the shortfall is the forgiven amount.
        assert naive.forgiven_cents > 0
        assert clicks_value > naive.paid_clicks[0]

    def test_throttling_eliminates_forgiven_clicks(self, reports):
        assert reports["throttled"].forgiven_cents == 0
        assert reports["throttled"].free_clicks[0] == 0

    def test_throttling_recovers_revenue(self, reports):
        assert (
            reports["throttled"].revenue_cents
            >= reports["naive"].revenue_cents
        )

    def test_naive_attacker_wins_many_auctions(self, reports):
        # The attacker keeps winning while its clicks are in flight.
        assert reports["naive"].wins[0] > 5

    def test_throttled_attacker_capped(self, reports):
        """With budget 150 and 5 auctions per round, the throttled bid is
        at most 30 < 80 (honest bid), so the attacker never wins."""
        assert reports["throttled"].wins[0] == 0


class TestNoDelayBaseline:
    def test_without_delay_policies_agree_on_forgiveness(self):
        """With instant clicks there are no outstanding ads, so naive and
        throttled collect the same revenue and forgive a click only when
        the budget cannot cover the last price."""
        population = attack_population()
        naive = simulate_gaming(
            population, rounds=40, auctions_per_round=1,
            click_delay_rounds=0, policy="naive", seed=7,
        )
        throttled = simulate_gaming(
            population, rounds=40, auctions_per_round=1,
            click_delay_rounds=0, policy="throttled", seed=7,
        )
        assert naive.forgiven_cents == throttled.forgiven_cents == 0
        assert naive.revenue_cents == throttled.revenue_cents

    def test_deterministic_given_seed(self):
        population = attack_population()
        a = simulate_gaming(population, 30, 3, 2, "naive", seed=5)
        b = simulate_gaming(population, 30, 3, 2, "naive", seed=5)
        assert a.revenue_cents == b.revenue_cents
        assert a.wins == b.wins
