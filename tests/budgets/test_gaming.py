"""E5: the Section IV gaming attack and its mitigation by throttling."""

from __future__ import annotations

import pytest

from repro.budgets.gaming import GamingAdvertiser, simulate_gaming
from repro.errors import BudgetError


def attack_population():
    """A nearly exhausted attacker against deep-pocketed competitors."""
    attacker = GamingAdvertiser(0, bid_cents=100, budget_cents=150, ctr=0.5)
    honest = [
        GamingAdvertiser(i, bid_cents=80, budget_cents=100_000, ctr=0.5)
        for i in range(1, 4)
    ]
    return [attacker] + honest


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(BudgetError):
            simulate_gaming(attack_population(), 1, 1, 1, "magic", 0)

    def test_negative_delay_rejected(self):
        with pytest.raises(BudgetError):
            simulate_gaming(attack_population(), 1, 1, -1, "naive", 0)

    def test_bad_ctr_rejected(self):
        with pytest.raises(BudgetError):
            GamingAdvertiser(0, 1, 1, 1.5)


class TestAttack:
    @pytest.fixture(scope="class")
    def reports(self):
        kwargs = dict(
            rounds=60, auctions_per_round=5, click_delay_rounds=3, seed=42
        )
        return {
            policy: simulate_gaming(attack_population(), policy=policy, **kwargs)
            for policy in ("naive", "throttled")
        }

    def test_naive_forgives_clicks(self, reports):
        assert reports["naive"].forgiven_cents > 0
        assert reports["naive"].free_clicks[0] > 0

    def test_attacker_overshoots_budget_under_naive(self, reports):
        naive = reports["naive"]
        clicks_value = (
            naive.paid_clicks[0] + naive.free_clicks[0]
        )
        # The attacker received strictly more click value than it paid:
        # the shortfall is the forgiven amount.
        assert naive.forgiven_cents > 0
        assert clicks_value > naive.paid_clicks[0]

    def test_throttling_eliminates_forgiven_clicks(self, reports):
        assert reports["throttled"].forgiven_cents == 0
        assert reports["throttled"].free_clicks[0] == 0

    def test_throttling_recovers_revenue(self, reports):
        assert (
            reports["throttled"].revenue_cents
            >= reports["naive"].revenue_cents
        )

    def test_naive_attacker_wins_many_auctions(self, reports):
        # The attacker keeps winning while its clicks are in flight.
        assert reports["naive"].wins[0] > 5

    def test_throttled_attacker_capped(self, reports):
        """With budget 150 and 5 auctions per round, the throttled bid is
        at most 30 < 80 (honest bid), so the attacker never wins."""
        assert reports["throttled"].wins[0] == 0


class TestNoDelayBaseline:
    def test_without_delay_policies_agree_on_forgiveness(self):
        """With instant clicks there are no outstanding ads, so naive and
        throttled collect the same revenue and forgive a click only when
        the budget cannot cover the last price."""
        population = attack_population()
        naive = simulate_gaming(
            population, rounds=40, auctions_per_round=1,
            click_delay_rounds=0, policy="naive", seed=7,
        )
        throttled = simulate_gaming(
            population, rounds=40, auctions_per_round=1,
            click_delay_rounds=0, policy="throttled", seed=7,
        )
        assert naive.forgiven_cents == throttled.forgiven_cents == 0
        assert naive.revenue_cents == throttled.revenue_cents

    def test_deterministic_given_seed(self):
        population = attack_population()
        a = simulate_gaming(population, 30, 3, 2, "naive", seed=5)
        b = simulate_gaming(population, 30, 3, 2, "naive", seed=5)
        assert a.revenue_cents == b.revenue_cents
        assert a.wins == b.wins


class TestAtScaleMarket:
    def test_pure_function_of_arguments(self):
        from repro.budgets.gaming import gaming_market_at_scale

        def drawn(market):
            # Advertiser equality is by id alone; the determinism claim
            # is about the drawn attributes, so compare those.
            return [
                (a.advertiser_id, a.bid, a.daily_budget, a.ctr_factor,
                 a.phrases)
                for a in market.advertisers
            ]

        first = gaming_market_at_scale(num_attackers=30, num_honest=5, seed=3)
        second = gaming_market_at_scale(num_attackers=30, num_honest=5, seed=3)
        assert drawn(first) == drawn(second)
        assert drawn(first) != drawn(
            gaming_market_at_scale(num_attackers=30, num_honest=5, seed=4)
        )

    def test_population_shape(self):
        from repro.budgets.gaming import gaming_market_at_scale

        market = gaming_market_at_scale(
            num_attackers=40, num_honest=10, num_phrases=6, seed=0
        )
        assert len(market.advertisers) == 50
        assert len(market.attacker_ids) == 40
        assert len(market.honest_ids) == 10
        assert not market.attacker_ids & market.honest_ids
        assert set(market.search_rates.values()) == {1.0}
        phrases = set(market.search_rates)
        for advertiser in market.advertisers:
            assert len(advertiser.phrases) == 2
            assert advertiser.phrases <= phrases

    def test_attackers_are_near_exhausted(self):
        from repro.budgets.gaming import gaming_market_at_scale

        market = gaming_market_at_scale(num_attackers=50, num_honest=5, seed=1)
        by_id = {a.advertiser_id: a for a in market.advertisers}
        for attacker_id in market.attacker_ids:
            attacker = by_id[attacker_id]
            # Budget worth ~1.5-2 clicks (rounding slop aside): the
            # paper's nearly exhausted advertiser.
            assert attacker.daily_budget < 2.1 * attacker.bid
            assert attacker.daily_budget > 1.4 * attacker.bid
        for honest_id in market.honest_ids:
            honest = by_id[honest_id]
            assert honest.daily_budget > 20 * honest.bid

    def test_rejects_non_positive_sizes(self):
        from repro.budgets.gaming import gaming_market_at_scale

        with pytest.raises(BudgetError):
            gaming_market_at_scale(num_attackers=0)
        with pytest.raises(BudgetError):
            gaming_market_at_scale(num_honest=0)
        with pytest.raises(BudgetError):
            gaming_market_at_scale(num_phrases=0)


class TestForgivenFraction:
    def test_no_delivered_value_is_zero_loss(self):
        from repro.budgets.gaming import forgiven_fraction

        assert forgiven_fraction(0, 0) == 0.0

    def test_fully_paid_is_zero_loss(self):
        from repro.budgets.gaming import forgiven_fraction

        assert forgiven_fraction(500, 0) == 0.0

    def test_fraction_of_delivered_value(self):
        from repro.budgets.gaming import forgiven_fraction

        assert forgiven_fraction(300, 100) == pytest.approx(0.25)
        assert forgiven_fraction(0, 100) == pytest.approx(1.0)
