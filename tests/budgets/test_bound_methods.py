"""Tests for the alternative concentration bounds (Bernstein ablation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.budgets.hoeffding import (
    prob_sum_less_than,
    throttled_bid_bounds,
)
from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from repro.errors import BudgetError
from tests.conftest import throttle_ads


def exact_prob_less(ads, x):
    total = 0.0
    for mask in range(1 << len(ads)):
        probability = 1.0
        spent = 0
        for index, (price, ctr) in enumerate(ads):
            if mask >> index & 1:
                probability *= ctr
                spent += price
            else:
                probability *= 1.0 - ctr
        if spent < x:
            total += probability
    return total


class TestMethods:
    def test_unknown_method_rejected(self):
        with pytest.raises(BudgetError):
            prob_sum_less_than(((5, 0.5),), 3.0, 0, method="magic")

    @settings(deadline=None, max_examples=80)
    @given(
        ads=throttle_ads(max_ads=5),
        x=st.floats(min_value=0.0, max_value=250.0, allow_nan=False),
    )
    @pytest.mark.parametrize("method", ["hoeffding", "bernstein", "combined"])
    def test_all_methods_sound(self, method, ads, x):
        ads = tuple(sorted(ads))
        interval = prob_sum_less_than(ads, x, 0, method=method)
        assert exact_prob_less(ads, x) in interval

    @settings(deadline=None, max_examples=60)
    @given(
        ads=throttle_ads(max_ads=5),
        x=st.floats(min_value=0.0, max_value=250.0, allow_nan=False),
    )
    def test_combined_at_least_as_tight(self, ads, x):
        ads = tuple(sorted(ads))
        hoeffding = prob_sum_less_than(ads, x, 0, method="hoeffding")
        bernstein = prob_sum_less_than(ads, x, 0, method="bernstein")
        combined = prob_sum_less_than(ads, x, 0, method="combined")
        assert combined.width <= hoeffding.width + 1e-12
        assert combined.width <= bernstein.width + 1e-12

    def test_bernstein_wins_for_rare_clicks(self):
        """Low click probabilities give tiny variance: Bernstein's
        variance-aware tail beats Hoeffding's range-only tail."""
        ads = tuple(sorted([(30, 0.02)] * 6))
        mu = sum(p * c for p, c in ads)
        # Deviation large enough that the concentration term (not the
        # no-click floor prod(1-ctr) ~ 0.886) controls the lower bound.
        x = mu + 80.0
        hoeffding = prob_sum_less_than(ads, x, 0, method="hoeffding")
        bernstein = prob_sum_less_than(ads, x, 0, method="bernstein")
        assert bernstein.lo > hoeffding.lo

    @settings(deadline=None, max_examples=60)
    @given(
        bid=st.integers(min_value=0, max_value=50),
        budget=st.integers(min_value=0, max_value=200),
        auctions=st.integers(min_value=1, max_value=4),
        ads=throttle_ads(max_ads=5),
        depth=st.integers(min_value=0, max_value=5),
    )
    @pytest.mark.parametrize("method", ["bernstein", "combined"])
    def test_throttled_bounds_sound_for_all_methods(
        self, method, bid, budget, auctions, ads, depth
    ):
        problem = ThrottleProblem(bid, budget, auctions, ads)
        interval = throttled_bid_bounds(problem, depth, method=method)
        exact = exact_throttled_bid(problem)
        assert interval.lo - 1e-6 <= exact <= interval.hi + 1e-6
