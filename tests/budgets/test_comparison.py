"""Tests for bound-driven comparison and top-k under uncertainty."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.budgets.comparison import (
    BoundedBid,
    compare_throttled_bids,
    top_k_throttled,
)
from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from repro.errors import BudgetError
from tests.conftest import throttle_ads


def bounded(advertiser_id, bid, budget, auctions=1, ads=()):
    return BoundedBid(
        advertiser_id, ThrottleProblem(bid, budget, auctions, ads)
    )


class TestBoundedBid:
    def test_initial_bounds_contain_exact(self):
        bid = bounded(1, 20, 30, 2, [(10, 0.5), (15, 0.3)])
        exact = exact_throttled_bid(bid.problem)
        assert bid.bounds.lo - 1e-9 <= exact <= bid.bounds.hi + 1e-9

    def test_refine_tightens_until_exact(self):
        bid = bounded(1, 20, 30, 2, [(10, 0.5), (15, 0.3), (5, 0.9)])
        widths = [bid.bounds.width]
        while bid.refine():
            widths.append(bid.bounds.width)
        assert bid.exact
        assert widths[-1] < 1e-6
        assert all(a >= b - 1e-9 for a, b in zip(widths, widths[1:]))

    def test_refine_on_exact_returns_false(self):
        bid = bounded(1, 20, 1000)
        assert bid.exact
        assert not bid.refine()

    def test_resolve_exact_pins_bounds(self):
        bid = bounded(1, 20, 30, 2, [(10, 0.5)])
        value = bid.resolve_exact()
        assert bid.bounds.lo == bid.bounds.hi == value


class TestCompare:
    def test_self_comparison_rejected(self):
        a = bounded(1, 10, 100)
        b = bounded(1, 12, 100)
        with pytest.raises(BudgetError):
            compare_throttled_bids(a, b)

    def test_clearly_separated_no_refinement(self):
        rich = bounded(1, 50, 10_000)
        poor = bounded(2, 5, 10_000)
        assert compare_throttled_bids(rich, poor) == 1
        assert rich.refinements == 0 and poor.refinements == 0

    def test_equal_values_tie_break_by_id(self):
        a = bounded(1, 10, 10_000)
        b = bounded(2, 10, 10_000)
        assert compare_throttled_bids(a, b) == 1
        assert compare_throttled_bids(b, a) == -1

    @settings(deadline=None, max_examples=60)
    @given(
        a_ads=throttle_ads(max_ads=4),
        b_ads=throttle_ads(max_ads=4),
        a_bid=st.integers(min_value=1, max_value=40),
        b_bid=st.integers(min_value=1, max_value=40),
        budget=st.integers(min_value=5, max_value=120),
    )
    def test_agrees_with_exact_order(self, a_ads, b_ads, a_bid, b_bid, budget):
        a = bounded(1, a_bid, budget, 2, a_ads)
        b = bounded(2, b_bid, budget, 2, b_ads)
        outcome = compare_throttled_bids(a, b)
        exact_a = exact_throttled_bid(a.problem)
        exact_b = exact_throttled_bid(b.problem)
        if abs(exact_a - exact_b) > 1e-6:
            assert outcome == (1 if exact_a > exact_b else -1)
        else:
            assert outcome == (1 if a.advertiser_id < b.advertiser_id else -1)


class TestTopK:
    def test_k_must_be_positive(self):
        with pytest.raises(BudgetError):
            top_k_throttled([bounded(1, 10, 100)], 0)

    def test_selects_exact_top_k(self):
        bids = [
            bounded(i, 10 + i, 40, 2, [(5 * (i % 3), 0.5)] if i % 2 else [])
            for i in range(12)
        ]
        winners, stats = top_k_throttled(bids, 4)
        expected = sorted(
            bids,
            key=lambda b: (-exact_throttled_bid(b.problem), b.advertiser_id),
        )[:4]
        assert [w.advertiser_id for w in winners] == [
            w.advertiser_id for w in expected
        ]
        assert stats.comparisons > 0

    def test_pruning_skips_hopeless_contenders(self):
        strong = [bounded(i, 100, 10_000) for i in range(3)]
        weak = [bounded(10 + i, 1, 10_000) for i in range(5)]
        winners, stats = top_k_throttled(strong + weak, 3)
        assert {w.advertiser_id for w in winners} == {0, 1, 2}
        # The weak contenders were rejected by the bound test alone:
        # 3 insertions for the strong ones, no comparisons for the weak.
        assert stats.comparisons <= 6

    @settings(
        deadline=None,
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=40),
                st.integers(min_value=5, max_value=120),
                throttle_ads(max_ads=3),
            ),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_matches_exact_selection(self, specs, k):
        bids = [
            bounded(i, bid, budget, 2, ads)
            for i, (bid, budget, ads) in enumerate(specs)
        ]
        winners, _stats = top_k_throttled(bids, k)
        expected = sorted(
            bids,
            key=lambda b: (-exact_throttled_bid(b.problem), b.advertiser_id),
        )[:k]
        assert [w.advertiser_id for w in winners] == [
            w.advertiser_id for w in expected
        ]


class TestWorkAccounting:
    """The counters the benchmarks gate on must not under-report."""

    def test_resolve_exact_counts_the_skipped_depths(self):
        # Jumping to the exact value is equivalent to expanding every
        # remaining ad at once; the shortcut must not hide that work.
        bid = bounded(1, 80, 120, 2, [(40, 0.5), (30, 0.4), (20, 0.3)])
        bid.refine()
        assert bid.refinements == 1
        bid.resolve_exact()
        assert bid.refinements == 3
        # Already exact: nothing further to account for.
        bid.resolve_exact()
        assert bid.refinements == 3

    def test_pre_exact_bids_are_not_selection_fallbacks(self):
        # Debt-free bids arrive exact (their interval is a point); the
        # selection never drove them to exactness, so counting them
        # would overstate the bound machinery's failures.
        bids = [bounded(i, 50 + i, 200) for i in range(4)]
        assert all(bid.exact for bid in bids)
        _, stats = top_k_throttled(bids, 2)
        assert stats.exact_fallbacks == 0

    def test_tie_driven_exactness_is_counted(self):
        # Two identical throttled problems: their intervals can never
        # separate, so selection must resolve both exactly and break the
        # tie by id -- and the counter must say so.
        ads = [(40, 0.5)]
        first = bounded(1, 80, 100, 2, ads)
        second = bounded(2, 80, 100, 2, ads)
        winners, stats = top_k_throttled([first, second], 2)
        assert [w.advertiser_id for w in winners] == [1, 2]
        assert stats.exact_fallbacks == 2
        assert stats.refinements >= 2
