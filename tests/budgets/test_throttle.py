"""Tests for exact throttled-bid computation."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.budgets.throttle import (
    ThrottleProblem,
    exact_throttled_bid,
    min_beta_s_distribution,
    monte_carlo_throttled_bid,
    throttled_bid_via_dp,
    throttled_bid_via_enumeration,
)
from repro.errors import BudgetError
from tests.conftest import throttle_ads


class TestValidation:
    def test_negative_bid_rejected(self):
        with pytest.raises(BudgetError):
            ThrottleProblem(-1, 100, 1)

    def test_negative_budget_rejected(self):
        with pytest.raises(BudgetError):
            ThrottleProblem(10, -1, 1)

    def test_zero_auctions_rejected(self):
        with pytest.raises(BudgetError):
            ThrottleProblem(10, 100, 0)

    def test_bad_outstanding_rejected(self):
        with pytest.raises(BudgetError):
            ThrottleProblem(10, 100, 1, [(-5, 0.5)])
        with pytest.raises(BudgetError):
            ThrottleProblem(10, 100, 1, [(5, 1.5)])

    def test_zero_probability_ads_dropped(self):
        problem = ThrottleProblem(10, 100, 1, [(5, 0.0), (3, 0.5)])
        assert problem.outstanding == ((3, 0.5),)

    def test_liability_accessors(self):
        problem = ThrottleProblem(10, 100, 1, [(5, 0.5), (10, 0.2)])
        assert problem.max_liability == 15
        assert problem.expected_liability == pytest.approx(4.5)


class TestSimpleCases:
    def test_no_outstanding_affordable(self):
        # beta >= m * b: bid passes through.
        problem = ThrottleProblem(10, 100, 3)
        assert exact_throttled_bid(problem) == 10.0

    def test_no_outstanding_split_budget(self):
        # b̂ = min(b, beta / m) = 30 / 3.
        problem = ThrottleProblem(50, 30, 3)
        assert exact_throttled_bid(problem) == pytest.approx(10.0)

    def test_exhausted_budget(self):
        problem = ThrottleProblem(10, 0, 2)
        assert exact_throttled_bid(problem) == 0.0

    def test_trivially_unthrottled_shortcut(self):
        problem = ThrottleProblem(10, 1000, 2, [(5, 0.9)])
        assert problem.trivially_unthrottled()
        assert exact_throttled_bid(problem) == 10.0

    def test_single_outstanding_ad_hand_computed(self):
        # beta=20, m=1, b=15, one ad (price 10, ctr 0.5).
        # Clicked: min(15, 10) = 10; missed: min(15, 20) = 15.
        problem = ThrottleProblem(15, 20, 1, [(10, 0.5)])
        assert exact_throttled_bid(problem) == pytest.approx(12.5)

    def test_certain_debt_exceeding_budget(self):
        problem = ThrottleProblem(10, 8, 1, [(8, 1.0)])
        assert exact_throttled_bid(problem) == 0.0


class TestDistribution:
    def test_min_beta_s_distribution_caps_at_budget(self):
        problem = ThrottleProblem(1, 10, 1, [(8, 0.5), (8, 0.5)])
        dist = min_beta_s_distribution(problem)
        assert set(dist) == {0, 8, 10}
        assert dist[0] == pytest.approx(0.25)
        assert dist[8] == pytest.approx(0.5)
        assert dist[10] == pytest.approx(0.25)

    def test_distribution_sums_to_one(self):
        problem = ThrottleProblem(1, 50, 1, [(10, 0.3), (20, 0.6), (5, 0.9)])
        assert sum(min_beta_s_distribution(problem).values()) == pytest.approx(1.0)


class TestAgreementProperties:
    @settings(deadline=None, max_examples=120)
    @given(
        bid=st.integers(min_value=0, max_value=60),
        budget=st.integers(min_value=0, max_value=250),
        auctions=st.integers(min_value=1, max_value=5),
        ads=throttle_ads(),
    )
    def test_dp_equals_enumeration(self, bid, budget, auctions, ads):
        problem = ThrottleProblem(bid, budget, auctions, ads)
        assert throttled_bid_via_dp(problem) == pytest.approx(
            throttled_bid_via_enumeration(problem), abs=1e-9
        )

    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        bid=st.integers(min_value=1, max_value=40),
        budget=st.integers(min_value=0, max_value=150),
        auctions=st.integers(min_value=1, max_value=4),
        ads=throttle_ads(max_ads=4),
    )
    def test_monte_carlo_agrees(self, bid, budget, auctions, ads):
        problem = ThrottleProblem(bid, budget, auctions, ads)
        exact = exact_throttled_bid(problem)
        estimate = monte_carlo_throttled_bid(
            problem, 6000, random.Random(99)
        )
        assert abs(estimate - exact) < 0.05 * max(1.0, bid) + 0.5

    @settings(deadline=None, max_examples=60)
    @given(
        bid=st.integers(min_value=0, max_value=60),
        budget=st.integers(min_value=0, max_value=250),
        auctions=st.integers(min_value=1, max_value=5),
        ads=throttle_ads(),
    )
    def test_throttled_bid_never_exceeds_bid(self, bid, budget, auctions, ads):
        problem = ThrottleProblem(bid, budget, auctions, ads)
        value = exact_throttled_bid(problem)
        assert 0.0 <= value <= bid + 1e-9

    @settings(deadline=None, max_examples=40)
    @given(
        bid=st.integers(min_value=1, max_value=40),
        budget=st.integers(min_value=0, max_value=150),
        auctions=st.integers(min_value=1, max_value=4),
        ads=throttle_ads(max_ads=4),
    )
    def test_more_debt_never_raises_bid(self, bid, budget, auctions, ads):
        base = ThrottleProblem(bid, budget, auctions, ads)
        extra = ThrottleProblem(bid, budget, auctions, ads + [(10, 0.5)])
        assert exact_throttled_bid(extra) <= exact_throttled_bid(base) + 1e-9

    @settings(deadline=None, max_examples=40)
    @given(
        bid=st.integers(min_value=1, max_value=40),
        budget=st.integers(min_value=0, max_value=120),
        auctions=st.integers(min_value=1, max_value=4),
        ads=throttle_ads(max_ads=4),
    )
    def test_more_budget_never_lowers_bid(self, bid, budget, auctions, ads):
        poorer = ThrottleProblem(bid, budget, auctions, ads)
        richer = ThrottleProblem(bid, budget + 25, auctions, ads)
        assert (
            exact_throttled_bid(richer)
            >= exact_throttled_bid(poorer) - 1e-9
        )

    @settings(deadline=None, max_examples=40)
    @given(
        bid=st.integers(min_value=1, max_value=40),
        budget=st.integers(min_value=0, max_value=120),
        auctions=st.integers(min_value=1, max_value=3),
        ads=throttle_ads(max_ads=4),
    )
    def test_more_auctions_never_raise_bid(self, bid, budget, auctions, ads):
        fewer = ThrottleProblem(bid, budget, auctions, ads)
        more = ThrottleProblem(bid, budget, auctions + 1, ads)
        assert exact_throttled_bid(more) <= exact_throttled_bid(fewer) + 1e-9

    def test_monte_carlo_requires_samples(self):
        problem = ThrottleProblem(1, 1, 1)
        with pytest.raises(BudgetError):
            monte_carlo_throttled_bid(problem, 0, random.Random(0))
