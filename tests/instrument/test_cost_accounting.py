"""Work-accounting invariants: counters vs the analytic cost model.

The acceptance bar for the instrumentation layer: with collection
enabled, the counter-derived expected materialized-node cost equals
``plans/cost.py``'s closed form *exactly* on deterministic (sr = 1)
instances, and matches in expectation on stochastic ones.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.instrument import MetricsCollector, names
from repro.plans.baselines import no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import SharedAggregationInstance
from repro.workloads.fig4 import fig4_instance

from tests.conftest import query_families


def _scores(instance) -> dict:
    rng = random.Random(0xFEED)
    return {v: rng.uniform(0.1, 9.0) for v in instance.variables}


class TestDeterministicCostMatch:
    """On sr=1 instances every node materializes every round: the
    per-round counter average must equal the closed form exactly."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("planner", [greedy_shared_plan, no_sharing_plan])
    def test_counter_cost_equals_analytic_cost(self, seed, planner):
        instance = fig4_instance(1.0, num_queries=6, num_advertisers=12, seed=seed)
        plan = planner(instance)
        collector = MetricsCollector()
        executor = PlanExecutor(plan, 3, collector)
        rounds = 4
        scores = _scores(instance)
        for _ in range(rounds):
            executor.run_round(scores)
        analytic = expected_plan_cost(plan)
        assert analytic == float(int(analytic))  # sr=1 -> integral cost
        assert collector.counter(names.PLAN_NODES) == rounds * int(analytic)
        assert collector.counter(names.PLAN_MERGES) == rounds * int(analytic)

    def test_monte_carlo_cost_matches_in_expectation(self):
        instance = fig4_instance(0.6, num_queries=6, num_advertisers=12, seed=1)
        plan = greedy_shared_plan(instance)
        collector = MetricsCollector()
        executor = PlanExecutor(plan, 3, collector)
        rng = random.Random(31337)
        rounds = 3000
        scores = _scores(instance)
        for _ in range(rounds):
            occurring = [
                q.name for q in instance.queries if rng.random() < q.search_rate
            ]
            executor.run_round(scores, occurring)
        empirical = collector.counter(names.PLAN_NODES) / rounds
        assert empirical == pytest.approx(expected_plan_cost(plan), rel=0.06)


class TestCounterConsistency:
    """Collector counters must mirror the executor's own result fields."""

    @settings(max_examples=40, deadline=None)
    @given(query_families(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_collector_mirrors_execution_result(self, family, occ_seed):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        plan = greedy_shared_plan(instance)
        collector = MetricsCollector()
        executor = PlanExecutor(plan, 2, collector)
        rng = random.Random(occ_seed)
        names_all = [q.name for q in instance.queries] + [
            q.name for q in instance.trivial_queries
        ]
        occurring = [n for n in names_all if rng.random() < 0.7]
        result = executor.run_round(_scores(instance), occurring)
        assert collector.counter(names.PLAN_NODES) == result.nodes_materialized
        assert collector.counter(names.PLAN_MERGES) == result.merges_performed
        assert (
            collector.counter(names.PLAN_LEAF_SCANS)
            == result.advertisers_scanned
        )
        assert collector.counter(names.PLAN_CACHE_HITS) == result.cache_hits
        assert collector.counter(names.PLAN_CACHE_MISSES) == result.cache_misses
        # One merge per materialized operator node, keyed by node id.
        node_merges = collector.keyed(names.PLAN_NODE_MERGES)
        assert sum(node_merges.values()) == result.nodes_materialized
        assert all(count == 1 for count in node_merges.values())

    def test_cache_hits_appear_when_queries_share_nodes(self):
        # Two identical-variable queries dedupe to one plan query; two
        # *overlapping* queries share fragment nodes, so executing both
        # in one round must hit the round memo at least once.
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["a", "b", "d"]}, 1.0
        )
        plan = greedy_shared_plan(instance)
        collector = MetricsCollector()
        executor = PlanExecutor(plan, 2, collector)
        result = executor.run_round(_scores(instance))
        assert result.cache_hits > 0
        assert result.cache_misses >= result.nodes_materialized
        assert collector.counter(names.PLAN_CACHE_HITS) == result.cache_hits

    def test_null_collector_leaves_result_counters_intact(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["a", "b", "d"]}, 1.0
        )
        plan = greedy_shared_plan(instance)
        plain = PlanExecutor(plan, 2).run_round(_scores(instance))
        collector = MetricsCollector()
        instrumented = PlanExecutor(plan, 2, collector).run_round(
            _scores(instance)
        )
        assert plain.answers == instrumented.answers
        assert plain.nodes_materialized == instrumented.nodes_materialized
        assert plain.advertisers_scanned == instrumented.advertisers_scanned
