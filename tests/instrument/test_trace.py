"""Unit tests for the trace-event ring buffer."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAuctionError
from repro.instrument import TraceRing


class TestTraceRing:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(InvalidAuctionError):
            TraceRing(0)

    def test_records_in_order_with_sequence_numbers(self):
        ring = TraceRing(10)
        ring.append("a", x=1)
        ring.append("b", x=2)
        events = ring.events()
        assert [e.name for e in events] == ["a", "b"]
        assert [e.seq for e in events] == [0, 1]
        assert events[0].elapsed_s <= events[1].elapsed_s

    def test_ring_drops_oldest_and_counts(self):
        ring = TraceRing(3)
        for index in range(5):
            ring.append("e", i=index)
        assert len(ring) == 3
        assert ring.dropped == 2
        events = ring.events()
        # The oldest two were dropped; sequence numbers are never reused.
        assert [e.fields["i"] for e in events] == [2, 3, 4]
        assert [e.seq for e in events] == [2, 3, 4]

    def test_clear_keeps_sequence_monotone(self):
        ring = TraceRing(4)
        ring.append("a")
        ring.clear()
        event = ring.append("b")
        assert len(ring) == 1
        assert event.seq == 1

    def test_json_export(self):
        ring = TraceRing(4)
        ring.append("engine.round", round_index=0, displays=3)
        payload = json.loads(ring.to_json())
        assert payload["dropped"] == 0
        (event,) = payload["events"]
        assert event["name"] == "engine.round"
        assert event["displays"] == 3
        assert event["seq"] == 0
        assert "elapsed_s" in event

    def test_dump_writes_file(self, tmp_path):
        ring = TraceRing(4)
        ring.append("a", v=1)
        path = tmp_path / "trace.json"
        ring.dump(str(path))
        assert json.loads(path.read_text())["events"][0]["v"] == 1

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=64),
    )
    def test_ring_invariants(self, capacity, appended):
        ring = TraceRing(capacity)
        for index in range(appended):
            ring.append("e", i=index)
        assert len(ring) == min(capacity, appended)
        assert ring.dropped == max(0, appended - capacity)
        events = ring.events()
        # Retained events are the newest ones, in order.
        assert [e.fields["i"] for e in events] == list(
            range(max(0, appended - capacity), appended)
        )
