"""Unit tests for the metrics registry."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.instrument import (
    NULL,
    Collector,
    MetricsCollector,
    NullCollector,
    TraceRing,
    names,
)


class TestNullCollector:
    def test_singleton_is_disabled(self):
        assert NULL.enabled is False
        assert isinstance(NULL, NullCollector)

    def test_all_operations_are_inert(self):
        NULL.incr("a")
        NULL.incr("a", 5)
        NULL.incr_keyed("b", 1)
        NULL.gauge("g", 3.0)
        NULL.event("e", x=1)
        with NULL.timer("t"):
            pass
        assert NULL.counter("a") == 0
        assert NULL.snapshot() == {}
        assert NULL.delta_since({"a": 3}) == {}

    def test_base_collector_contract(self):
        # Collector itself is usable as a no-op (subclass extension point).
        collector = Collector()
        collector.incr("x", 2)
        assert collector.counter("x") == 0


class TestMetricsCollector:
    def test_incr_accumulates(self):
        collector = MetricsCollector()
        collector.incr("plan.nodes")
        collector.incr("plan.nodes", 4)
        assert collector.counter("plan.nodes") == 5
        assert collector.counter("unknown") == 0

    def test_keyed_counters(self):
        collector = MetricsCollector()
        collector.incr_keyed(names.PLAN_NODE_MERGES, 7)
        collector.incr_keyed(names.PLAN_NODE_MERGES, 7, 2)
        collector.incr_keyed(names.PLAN_NODE_MERGES, 9)
        assert collector.keyed(names.PLAN_NODE_MERGES) == {7: 3, 9: 1}
        assert collector.keyed("unknown") == {}

    def test_gauge_last_write_wins(self):
        collector = MetricsCollector()
        collector.gauge("ta.stop_depth", 4)
        collector.gauge("ta.stop_depth", 2)
        assert collector.gauges["ta.stop_depth"] == 2.0

    def test_timer_accumulates_spans(self):
        collector = MetricsCollector()
        for _ in range(3):
            with collector.timer("engine.round_seconds"):
                pass
        stats = collector.timers["engine.round_seconds"]
        assert stats.count == 3
        assert stats.total_s >= 0.0

    def test_snapshot_delta(self):
        collector = MetricsCollector()
        collector.incr("a", 2)
        snapshot = collector.snapshot()
        collector.incr("a", 3)
        collector.incr("b")
        assert collector.delta_since(snapshot) == {"a": 3, "b": 1}
        # Unchanged counters are omitted from the delta.
        assert collector.delta_since(collector.snapshot()) == {}
        # Snapshots are frozen copies, not views.
        assert snapshot == {"a": 2}

    def test_reset_clears_everything(self):
        collector = MetricsCollector(trace=TraceRing(8))
        collector.incr("a")
        collector.incr_keyed("k", 1)
        collector.gauge("g", 1.0)
        with collector.timer("t"):
            pass
        collector.event("e")
        collector.reset()
        assert collector.counters == {}
        assert collector.keyed_counters == {}
        assert collector.gauges == {}
        assert collector.timers == {}
        assert len(collector.trace) == 0

    def test_event_without_ring_is_dropped(self):
        collector = MetricsCollector()
        collector.event("engine.round", round_index=0)  # must not raise

    def test_event_with_ring_records(self):
        ring = TraceRing(4)
        collector = MetricsCollector(trace=ring)
        collector.event("engine.round", round_index=3)
        (event,) = ring.events()
        assert event.name == "engine.round"
        assert event.fields["round_index"] == 3

    def test_json_round_trip(self):
        collector = MetricsCollector(trace=TraceRing(4))
        collector.incr("plan.nodes", 7)
        collector.incr_keyed("plan.node_merges", 3, 2)
        collector.gauge("ta.stop_depth", 5)
        with collector.timer("engine.round_seconds"):
            pass
        collector.event("engine.round", round_index=0, displays=2)
        payload = json.loads(collector.to_json())
        assert payload["counters"]["plan.nodes"] == 7
        assert payload["keyed_counters"]["plan.node_merges"] == {"3": 2}
        assert payload["gauges"]["ta.stop_depth"] == 5.0
        assert payload["timers"]["engine.round_seconds"]["count"] == 1
        assert payload["trace"]["events"][0]["name"] == "engine.round"

    def test_dump_writes_file(self, tmp_path):
        collector = MetricsCollector()
        collector.incr("a", 1)
        path = tmp_path / "metrics.json"
        collector.dump(str(path))
        assert json.loads(path.read_text())["counters"] == {"a": 1}

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=1, max_value=100),
            ),
            max_size=30,
        )
    )
    def test_counters_equal_sum_of_increments(self, increments):
        collector = MetricsCollector()
        expected: dict[str, int] = {}
        for name, value in increments:
            collector.incr(name, value)
            expected[name] = expected.get(name, 0) + value
        assert collector.counters == expected

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.integers(min_value=1, max_value=10),
            ),
            max_size=20,
        ),
        st.integers(min_value=0, max_value=20),
    )
    def test_delta_since_is_total_minus_snapshot(self, increments, cut):
        collector = MetricsCollector()
        for name, value in increments[:cut]:
            collector.incr(name, value)
        snapshot = collector.snapshot()
        for name, value in increments[cut:]:
            collector.incr(name, value)
        delta = collector.delta_since(snapshot)
        for name in set(collector.counters) | set(snapshot):
            assert delta.get(name, 0) == collector.counter(name) - snapshot.get(
                name, 0
            )
