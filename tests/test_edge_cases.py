"""Cross-cutting edge cases and regression guards.

Each test here pins behavior at a boundary that once bit (or could
plausibly bite) the implementation: duplicate phrases with identical
advertiser sets, single-advertiser markets, empty rounds, saturated
budgets, degenerate top-k capacities, and extreme search rates.
"""

from __future__ import annotations

import random

import pytest

from repro.core.advertiser import Advertiser
from repro.core.topk import TopKList, top_k_merge, top_k_scan
from repro.engine import SharedAuctionEngine
from repro.errors import InvalidPlanError
from repro.plans.baselines import no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.sharedsort.plan import build_shared_sort_plan


class TestIdenticalPhraseDedup:
    """Two phrases with the same advertiser set are one plan query."""

    def test_engine_resolves_aliased_phrases(self):
        advertisers = [
            Advertiser(i, bid=1.0 + i / 10, phrases=frozenset({"a", "b"}))
            for i in range(5)
        ]
        engine = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.3],
            search_rates={"a": 1.0, "b": 1.0},
            mode="shared",
            throttle=False,
            seed=0,
        )
        report = engine.run_round(["a", "b"])
        # Both phrases auctioned; the plan computed the ranking once.
        assert len(report.occurring_phrases) == 2
        assert report.displays == 2

    def test_instance_merges_rates(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("a", [1, 2], 0.5),
                AggregateQuery("b", [2, 1], 0.5),
            ]
        )
        assert len(instance.queries) == 1
        assert instance.queries[0].search_rate == pytest.approx(0.75)


class TestDegenerateSizes:
    def test_single_advertiser_market(self):
        advertisers = [Advertiser(0, bid=1.0, phrases=frozenset({"p"}))]
        engine = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.3, 0.2],
            search_rates={"p": 1.0},
            throttle=False,
            seed=1,
        )
        report = engine.run_round(["p"])
        # One advertiser, slot 2 empty; GSP price for a lone winner is 0,
        # so nothing is displayed for pay (price 0 ads are skipped).
        assert report.displays == 0

    def test_top1_list(self):
        ranking = TopKList(1, [(3.0, 1), (5.0, 2)])
        assert ranking.advertiser_ids() == (2,)
        assert top_k_merge(ranking, TopKList(1, [(9.0, 3)])).advertiser_ids() == (3,)

    def test_plan_for_two_variable_query(self):
        instance = SharedAggregationInstance.from_sets({"p": ["a", "b"]})
        plan = greedy_shared_plan(instance)
        assert plan.total_cost == 1
        assert expected_plan_cost(plan) == 1.0

    def test_shared_sort_single_advertiser_phrase(self):
        plan = build_shared_sort_plan({"p": [7]}, 1.0)
        live = plan.instantiate({7: 2.5})
        stream = live.stream_for_phrase("p")
        assert stream.item(0) == (2.5, 7)
        assert stream.item(1) is None


class TestExtremeRates:
    def test_zero_rate_queries_cost_nothing(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("hot", ["a", "b", "c"], 1.0),
                AggregateQuery("never", ["c", "d", "e"], 0.0),
            ]
        )
        plan = greedy_shared_plan(instance)
        # The hot chain costs 2; the never-query's extra nodes cost 0.
        hot_cost = expected_plan_cost(plan)
        assert hot_cost == pytest.approx(2.0)

    def test_engine_with_zero_rate_never_auctions(self):
        advertisers = [
            Advertiser(0, bid=1.0, phrases=frozenset({"p"})),
            Advertiser(1, bid=2.0, phrases=frozenset({"p"})),
        ]
        engine = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.3],
            search_rates={"p": 0.0},
            seed=2,
        )
        report = engine.run(20)
        assert report.auctions == 0
        assert report.revenue_cents == 0


class TestBudgetSaturation:
    def test_fully_exhausted_market_goes_quiet(self):
        advertisers = [
            Advertiser(
                i, bid=2.0, daily_budget=0.02, phrases=frozenset({"p"})
            )
            for i in range(3)
        ]
        engine = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.9],
            search_rates={"p": 1.0},
            throttle=True,
            mean_click_delay_rounds=0.0,
            seed=3,
        )
        report = engine.run(60)
        assert report.forgiven_cents == 0
        for advertiser in advertisers:
            assert engine.budget_manager.spent_cents(
                advertiser.advertiser_id
            ) <= 2

    def test_throttled_scores_never_negative(self):
        advertisers = [
            Advertiser(0, bid=5.0, daily_budget=0.01, phrases=frozenset({"p"})),
            Advertiser(1, bid=0.5, phrases=frozenset({"p"})),
        ]
        engine = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.5],
            search_rates={"p": 1.0},
            throttle=True,
            seed=4,
        )
        for _ in range(10):
            engine.run_round(["p"])
        # No assertion failure = no negative scores fed into top-k.


class TestExecutorBoundaries:
    def test_round_with_no_occurring_queries(self):
        instance = SharedAggregationInstance.from_sets({"p": [1, 2]})
        executor = PlanExecutor(greedy_shared_plan(instance), 2)
        result = executor.run_round({1: 1.0, 2: 2.0}, occurring=[])
        assert result.answers == {}
        assert result.nodes_materialized == 0

    def test_scores_with_negative_values(self):
        """Throttling can push effective scores to zero but the executor
        must tolerate arbitrary floats."""
        instance = SharedAggregationInstance.from_sets({"p": [1, 2]})
        executor = PlanExecutor(greedy_shared_plan(instance), 2)
        result = executor.run_round({1: -1.0, 2: 0.0})
        assert result.answers["p"].advertiser_ids() == (2, 1)

    def test_duplicate_scan_entries(self):
        ranking = top_k_scan(3, [(1.0, 5), (2.0, 5), (0.5, 5)])
        assert ranking.advertiser_ids() == (5,)
        assert ranking[0].score == 2.0

    def test_no_sharing_plan_single_query_equals_greedy(self):
        instance = SharedAggregationInstance.from_sets({"p": list(range(6))})
        assert (
            no_sharing_plan(instance).total_cost
            == greedy_shared_plan(instance).total_cost
            == 5
        )


class TestDeterminismUnderConcurrentStructures:
    def test_plan_building_is_order_independent(self):
        """Feeding queries in different orders yields the same cost
        (names differ, structure cost must not)."""
        sets_a = {"q1": ["a", "b", "c"], "q2": ["b", "c", "d"]}
        sets_b = {"q2": ["b", "c", "d"], "q1": ["a", "b", "c"]}
        cost_a = expected_plan_cost(
            greedy_shared_plan(SharedAggregationInstance.from_sets(sets_a))
        )
        cost_b = expected_plan_cost(
            greedy_shared_plan(SharedAggregationInstance.from_sets(sets_b))
        )
        assert cost_a == pytest.approx(cost_b)

    def test_engine_history_sums_to_totals(self):
        rng = random.Random(0)
        advertisers = [
            Advertiser(
                i,
                bid=rng.uniform(0.5, 2.0),
                phrases=frozenset({"p", "q"} if i % 2 else {"p"}),
            )
            for i in range(8)
        ]
        engine = SharedAuctionEngine(
            advertisers,
            slot_factors=[0.3, 0.2],
            search_rates={"p": 0.7, "q": 0.5},
            seed=6,
        )
        report = engine.run(30)
        assert report.merges == sum(r.merges for r in report.history)
        assert report.scans == sum(r.scans for r in report.history)
        assert report.displays == sum(r.displays for r in report.history)
