"""Tests for query normalization and two-stage rewriting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAuctionError
from repro.matching.normalize import normalize_query, tokenize
from repro.matching.rewriter import PhraseDictionary, TwoStageRewriter


class TestNormalize:
    def test_lowercase_and_punctuation(self):
        assert normalize_query("Hiking-Boots!") == ("hiking", "boots")

    def test_stopwords_dropped(self):
        assert normalize_query("buy cheap boots online") == ("boots",)

    def test_duplicates_dropped_keeping_order(self):
        assert normalize_query("boots boots hiking boots") == ("boots", "hiking")

    def test_empty_query(self):
        assert normalize_query("") == ()
        assert normalize_query("the and of") == ()

    def test_tokenize_keeps_numbers(self):
        assert tokenize("iPhone 15 case") == ["iphone", "15", "case"]

    @given(st.text(max_size=40))
    def test_idempotent(self, text):
        once = normalize_query(text)
        again = normalize_query(" ".join(once))
        assert once == again


class TestPhraseDictionary:
    def test_rejects_empty(self):
        with pytest.raises(InvalidAuctionError):
            PhraseDictionary([])

    def test_rejects_unnormalizable_phrase(self):
        with pytest.raises(InvalidAuctionError):
            PhraseDictionary(["the of"])

    def test_exact_lookup(self):
        dictionary = PhraseDictionary(["hiking boots", "high heels"])
        assert dictionary.exact(frozenset({"hiking", "boots"})) == "hiking boots"
        assert dictionary.exact(frozenset({"sandals"})) is None

    def test_candidates_by_token(self):
        dictionary = PhraseDictionary(
            ["hiking boots", "snow boots", "high heels"]
        )
        found = dictionary.candidates(frozenset({"boots"}))
        assert found == ["hiking boots", "snow boots"]

    def test_tokens_of_unknown_raises(self):
        dictionary = PhraseDictionary(["boots"])
        with pytest.raises(InvalidAuctionError):
            dictionary.tokens_of("gloves")

    def test_membership_and_len(self):
        dictionary = PhraseDictionary(["a b", "c d"])
        assert "a b" in dictionary
        assert len(dictionary) == 2


class TestTwoStageRewriter:
    @pytest.fixture
    def rewriter(self):
        dictionary = PhraseDictionary(
            ["hiking boots", "snow boots", "high heels", "running shoes"]
        )
        return TwoStageRewriter(dictionary, threshold=0.4)

    def test_threshold_validated(self, rewriter):
        with pytest.raises(InvalidAuctionError):
            TwoStageRewriter(rewriter.dictionary, threshold=0.0)

    def test_exact_match(self, rewriter):
        result = rewriter.rewrite("Hiking Boots")
        assert result.phrase == "hiking boots"
        assert result.exact
        assert result.score == 1.0

    def test_stopword_robust_exact_match(self, rewriter):
        result = rewriter.rewrite("buy hiking boots online")
        assert result.phrase == "hiking boots"
        assert result.exact

    def test_fuzzy_match_above_threshold(self, rewriter):
        result = rewriter.rewrite("waterproof hiking boots")
        assert result.phrase == "hiking boots"
        assert not result.exact
        assert result.score == pytest.approx(2 / 3)

    def test_miss_below_threshold(self, rewriter):
        result = rewriter.rewrite("vintage wristwatch")
        assert result.phrase is None
        assert result.score == 0.0

    def test_empty_query_misses(self, rewriter):
        assert rewriter.rewrite("the of and").phrase is None

    def test_tie_breaks_deterministically(self):
        dictionary = PhraseDictionary(["red boots", "blue boots"])
        rewriter = TwoStageRewriter(dictionary, threshold=0.3)
        result = rewriter.rewrite("boots")
        # Both score 1/2; lexicographically least phrase wins.
        assert result.phrase == "blue boots"

    def test_stream_rewrite_drops_misses(self, rewriter):
        stream = [
            (0.1, "hiking boots"),
            (0.2, "quantum physics"),
            (0.3, "high heels sale"),
        ]
        rewritten = rewriter.rewrite_stream(stream)
        assert rewritten == [(0.1, "hiking boots"), (0.3, "high heels")]

    def test_integrates_with_round_batcher(self, rewriter):
        from repro.engine.rounds import RoundBatcher, TimestampedQuery

        stream = rewriter.rewrite_stream(
            [(0.1, "hiking boots"), (0.2, "snow boots"), (0.9, "high heels")]
        )
        queries = [TimestampedQuery(t, p) for t, p in stream]
        (batch,) = RoundBatcher(1.0).batch(queries)
        assert batch.distinct_phrases == (
            "high heels",
            "hiking boots",
            "snow boots",
        )
