"""E2: the Section II-B hiking-boots / high-heels sharing example.

The paper: resolving the two phrases separately scans 240 + 230 = 470
advertisers; sharing the general-store top-k scans 200 + 30 + 40 = 270 --
"40% fewer advertisers".
"""

from __future__ import annotations

import pytest

from repro.plans.cost import expected_plan_cost
from repro.plans.executor import PlanExecutor
from repro.plans.fragments import identify_fragments
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.baselines import no_sharing_plan
from repro.workloads.scenarios import SHOE_COUNTS, shoe_store_instance


@pytest.fixture(scope="module")
def shoe_setup():
    instance, groups = shoe_store_instance()
    plan = greedy_shared_plan(instance, pair_strategy="cover")
    return instance, groups, plan


class TestShoeStoreExample:
    def test_paper_counts(self):
        assert SHOE_COUNTS == {"general": 200, "sports": 40, "fashion": 30}

    def test_fragments_are_the_three_store_kinds(self, shoe_setup):
        instance, groups, _plan = shoe_setup
        fragments = identify_fragments(instance)
        sizes = sorted(len(f) for f in fragments)
        assert sizes == [30, 40, 200]

    def test_shared_scan_count_is_270(self, shoe_setup):
        instance, _groups, plan = shoe_setup
        executor = PlanExecutor(plan, 5)
        scores = {v: float(v % 97) for v in instance.variables}
        result = executor.run_round(scores)
        assert result.advertisers_scanned == 270

    def test_unshared_scan_count_is_470(self, shoe_setup):
        instance, _groups, _plan = shoe_setup
        executor = PlanExecutor(no_sharing_plan(instance), 5)
        scores = {v: float(v % 97) for v in instance.variables}
        result = executor.run_round(scores)
        assert result.advertisers_scanned == 470

    def test_forty_percent_fewer(self, shoe_setup):
        saving = 1 - 270 / 470
        assert saving == pytest.approx(0.4255, abs=1e-3)

    def test_answers_identical_between_modes(self, shoe_setup):
        instance, _groups, plan = shoe_setup
        scores = {v: float((v * 31) % 211) for v in instance.variables}
        shared = PlanExecutor(plan, 5).run_round(scores)
        unshared = PlanExecutor(no_sharing_plan(instance), 5).run_round(scores)
        assert shared.answers == unshared.answers

    def test_shared_plan_cheaper(self, shoe_setup):
        instance, _groups, plan = shoe_setup
        assert expected_plan_cost(plan) < expected_plan_cost(
            no_sharing_plan(instance)
        )
