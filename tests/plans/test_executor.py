"""Tests for the per-round plan executor."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.topk import TopKList
from repro.errors import InvalidPlanError
from repro.plans.dag import Plan
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from tests.conftest import query_families


@pytest.fixture
def instance():
    return SharedAggregationInstance(
        [
            AggregateQuery("pq", [1, 2, 3], 0.5),
            AggregateQuery("qr", [2, 3, 4], 0.5),
        ]
    )


@pytest.fixture
def executor(instance):
    return PlanExecutor(greedy_shared_plan(instance), 2)


class TestRunRound:
    def test_answers_match_brute_force(self, instance, executor):
        scores = {1: 4.0, 2: 1.0, 3: 3.0, 4: 2.0}
        result = executor.run_round(scores)
        for query in instance.queries:
            expected = TopKList(
                2, [(scores[v], v) for v in query.variables]
            )
            assert result.answers[query.name] == expected

    def test_only_occurring_queries_computed(self, executor):
        scores = {1: 4.0, 2: 1.0, 3: 3.0, 4: 2.0}
        result = executor.run_round(scores, occurring=["pq"])
        assert set(result.answers) == {"pq"}

    def test_counts_materialized_nodes(self, executor):
        scores = {1: 4.0, 2: 1.0, 3: 3.0, 4: 2.0}
        full = executor.run_round(scores)
        assert full.nodes_materialized == executor.plan.total_cost
        partial = executor.run_round(scores, occurring=["pq"])
        assert partial.nodes_materialized < full.nodes_materialized

    def test_missing_score_raises(self, executor):
        with pytest.raises(InvalidPlanError):
            executor.run_round({1: 1.0}, occurring=["pq"])

    def test_unknown_query_raises(self, executor):
        with pytest.raises(InvalidPlanError):
            executor.run_round({}, occurring=["nope"])

    def test_trivial_query_served_from_leaf(self):
        instance = SharedAggregationInstance(
            [AggregateQuery("big", [1, 2], 1.0), AggregateQuery("tiny", [3], 1.0)]
        )
        executor = PlanExecutor(greedy_shared_plan(instance), 2)
        result = executor.run_round({1: 1.0, 2: 2.0, 3: 3.0})
        assert result.answers["tiny"].advertiser_ids() == (3,)
        # Serving a leaf costs no merge.
        assert result.nodes_materialized == 1

    def test_requires_positive_k(self, instance):
        with pytest.raises(InvalidPlanError):
            PlanExecutor(greedy_shared_plan(instance), 0)

    def test_incomplete_plan_rejected(self, instance):
        with pytest.raises(InvalidPlanError):
            PlanExecutor(Plan(instance), 2)

    def test_string_variables_supported(self):
        instance = SharedAggregationInstance.from_sets(
            {"q": ["alice", "bob", "carol"]}
        )
        executor = PlanExecutor(greedy_shared_plan(instance), 2)
        result = executor.run_round({"alice": 3.0, "bob": 2.0, "carol": 1.0})
        assert len(result.answers["q"]) == 2


class TestSharingSavesWork:
    def test_shared_cheaper_than_independent(self):
        general = list(range(10))
        sports = list(range(10, 14))
        fashion = list(range(14, 17))
        instance = SharedAggregationInstance.from_sets(
            {"boots": general + sports, "heels": general + fashion}
        )
        scores = {v: float(v % 7) for v in instance.variables}
        shared = PlanExecutor(greedy_shared_plan(instance), 3).run_round(scores)
        # Independent resolution reads |I_q| advertisers per query.
        independent_scans = sum(len(q.variables) for q in instance.queries)
        assert shared.advertisers_scanned < independent_scans

    @settings(
        deadline=None,
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query_families(max_queries=4, max_vars=7), st.integers(1, 4))
    def test_answers_always_correct(self, family, k):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        executor = PlanExecutor(greedy_shared_plan(instance), k)
        scores = {v: (hash(v) % 100) / 10.0 for v in instance.variables}
        result = executor.run_round(scores)
        from repro.plans.executor import _as_int

        for query in instance.queries:
            expected = TopKList(
                k, [(scores[v], _as_int(v)) for v in query.variables]
            )
            assert result.answers[query.name] == expected
