"""The cross-round incremental executor and its invalidation model.

Covers the tentpole's correctness surface:

- basic cross-round behavior: answers identical to a fresh executor,
  full reuse on unchanged rounds, recomputation confined to the dirty
  cone;
- the crafted revalidation scenario where ``merges_performed``
  legitimately diverges from ``nodes_materialized``;
- the bounded LRU cache (capacity, evictions, correctness under
  eviction);
- soundness checking of declared dirty sets;
- the base executor's enforced ``merges == nodes_materialized``
  invariant and the cross-round executor's weakened form;
- plan-maintenance composition through :meth:`rebind`;
- the structural property behind dirty-set invalidation: the ancestor
  closure of the dirty leaves is exactly the set of nodes whose varset
  intersects the dirty variables, and node values outside it never
  change.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import top_k_scan
from repro.errors import InvalidPlanError
from repro.instrument import MetricsCollector, names
from repro.plans.dag import Plan
from repro.plans.executor import (
    CrossRoundCache,
    CrossRoundPlanExecutor,
    ExecutionResult,
    PlanExecutor,
)
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.plans.maintenance import PlanMaintainer

from tests.conftest import query_families


def _greedy_plan(sets, rates):
    instance = SharedAggregationInstance(
        AggregateQuery(name, members, rates[name])
        for name, members in sets.items()
    )
    return greedy_shared_plan(instance)


def _chain_plan():
    """Two queries sharing a prefix: P = a ⊕ b, G = P ⊕ c.

    Leaves are integer advertiser ids with scores a=10, b=1, c=5.
    """
    instance = SharedAggregationInstance(
        [
            AggregateQuery("P", {1, 2}, 1.0),
            AggregateQuery("G", {1, 2, 3}, 1.0),
        ]
    )
    plan = Plan(instance)
    p = plan.add_internal(plan.leaf_of(1), plan.leaf_of(2))
    plan.add_internal(p, plan.leaf_of(3))
    plan.validate()
    return plan


def _random_scores(variables, rng):
    return {v: rng.uniform(0.1, 100.0) for v in variables}


class TestCrossRoundBasics:
    def test_answers_match_fresh_executor_across_rounds(self):
        rng = random.Random(7)
        sets = {
            "q0": ["x0", "x1", "x2"],
            "q1": ["x1", "x2", "x3", "x4"],
            "q2": ["x0", "x4", "x5"],
        }
        rates = {name: 1.0 for name in sets}
        plan = _greedy_plan(sets, rates)
        cached = CrossRoundPlanExecutor(plan, 2)
        fresh = PlanExecutor(plan, 2)
        scores = _random_scores(plan.instance.variables, rng)
        for _ in range(12):
            for v in rng.sample(sorted(plan.instance.variables), 2):
                scores[v] = rng.uniform(0.1, 100.0)
            a = cached.run_round(dict(scores))
            b = fresh.run_round(dict(scores))
            assert a.answers == b.answers

    def test_unchanged_round_is_pure_reuse(self):
        plan = _chain_plan()
        executor = CrossRoundPlanExecutor(plan, 2)
        scores = {1: 10.0, 2: 1.0, 3: 5.0}
        first = executor.run_round(scores)
        assert first.nodes_materialized == 2
        assert first.merges_performed == 2
        second = executor.run_round(scores)
        assert second.nodes_materialized == 0
        assert second.merges_performed == 0
        assert second.nodes_reused == 2
        assert second.advertisers_scanned == 0
        assert second.answers == first.answers

    def test_recompute_confined_to_dirty_cone(self):
        # G = P ⊕ c: changing c must recompute G but reuse P untouched.
        plan = _chain_plan()
        executor = CrossRoundPlanExecutor(plan, 2)
        executor.run_round({1: 10.0, 2: 1.0, 3: 5.0})
        result = executor.run_round({1: 10.0, 2: 1.0, 3: 50.0})
        assert result.nodes_materialized == 1  # G only
        assert result.merges_performed == 1
        assert result.nodes_reused == 1  # P served from cache
        assert list(result.answers["G"].advertiser_ids()) == [3, 1]
        assert list(result.answers["P"].advertiser_ids()) == [1, 2]

    def test_leaf_epochs_bump_only_on_actual_change(self):
        plan = _chain_plan()
        executor = CrossRoundPlanExecutor(plan, 2)
        executor.run_round({1: 10.0, 2: 1.0, 3: 5.0})
        assert executor.leaf_epoch(1) == 1
        executor.run_round({1: 10.0, 2: 1.0, 3: 5.0}, dirty={1, 2, 3})
        # Over-declared dirty set: no score changed, no epoch moved.
        assert executor.leaf_epoch(1) == 1
        executor.run_round({1: 11.0, 2: 1.0, 3: 5.0}, dirty={1})
        assert executor.leaf_epoch(1) == 2
        assert executor.leaf_epoch(2) == 1

    def test_per_round_work_never_exceeds_uncached(self):
        rng = random.Random(13)
        sets = {f"q{i}": [f"x{j}" for j in range(i, i + 4)] for i in range(5)}
        rates = {name: 1.0 for name in sets}
        plan = _greedy_plan(sets, rates)
        cached = CrossRoundPlanExecutor(plan, 3)
        fresh = PlanExecutor(plan, 3)
        scores = _random_scores(plan.instance.variables, rng)
        for _ in range(10):
            for v in rng.sample(sorted(plan.instance.variables), 1):
                scores[v] = rng.uniform(0.1, 100.0)
            a = cached.run_round(dict(scores))
            b = fresh.run_round(dict(scores))
            assert a.nodes_materialized <= b.nodes_materialized
            assert a.advertisers_scanned <= b.advertisers_scanned


class TestRevalidation:
    def test_equal_recompute_revalidates_ancestors_without_merge(self):
        """The crafted divergence scenario from the executor docstring.

        k=1 with a=10, b=1, c=5.  Changing b to 2 dirties P and G; P's
        merge reproduces top-1 = a (the equality cutoff keeps the *old*
        object), so G sees both operands unchanged by identity and
        revalidates without merging: one merge, two materializations.
        """
        plan = _chain_plan()
        executor = CrossRoundPlanExecutor(plan, 1)
        executor.run_round({1: 10.0, 2: 1.0, 3: 5.0})
        result = executor.run_round({1: 10.0, 2: 2.0, 3: 5.0})
        assert result.merges_performed == 1  # P only
        assert result.nodes_materialized == 2  # P and G
        assert result.nodes_revalidated == 1  # G, merge-free
        assert list(result.answers["P"].advertiser_ids()) == [1]
        assert list(result.answers["G"].advertiser_ids()) == [1]

    def test_revalidated_values_stay_correct_downstream(self):
        plan = _chain_plan()
        executor = CrossRoundPlanExecutor(plan, 1)
        fresh = PlanExecutor(plan, 1)
        scores = {1: 10.0, 2: 1.0, 3: 5.0}
        executor.run_round(dict(scores))
        # A change that *does* move the top-1 must propagate through the
        # previously revalidated chain.
        for b_score in (2.0, 20.0, 3.0, 30.0):
            scores[2] = b_score
            a = executor.run_round(dict(scores))
            b = fresh.run_round(dict(scores))
            assert a.answers == b.answers


class TestCacheBounds:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(InvalidPlanError):
            CrossRoundCache(0)
        with pytest.raises(InvalidPlanError):
            CrossRoundCache(-3)

    def test_rejects_cache_and_capacity_together(self):
        plan = _chain_plan()
        with pytest.raises(InvalidPlanError):
            CrossRoundPlanExecutor(
                plan, 2, cache=CrossRoundCache(), capacity=4
            )

    def test_lru_eviction_bounds_residency(self):
        plan = _chain_plan()  # 3 leaves + 2 operators = 5 cacheable nodes
        executor = CrossRoundPlanExecutor(plan, 2, capacity=2)
        executor.run_round({1: 10.0, 2: 1.0, 3: 5.0})
        assert executor.cache.resident == 2
        assert executor.cache.evictions == 3

    def test_eviction_never_corrupts_answers(self):
        rng = random.Random(5)
        sets = {
            "q0": ["x0", "x1", "x2"],
            "q1": ["x2", "x3", "x4"],
            "q2": ["x0", "x4", "x5"],
        }
        rates = {name: 1.0 for name in sets}
        plan = _greedy_plan(sets, rates)
        bounded = CrossRoundPlanExecutor(plan, 2, capacity=3)
        fresh = PlanExecutor(plan, 2)
        scores = _random_scores(plan.instance.variables, rng)
        total_evictions = 0
        for _ in range(8):
            for v in rng.sample(sorted(plan.instance.variables), 2):
                scores[v] = rng.uniform(0.1, 100.0)
            a = bounded.run_round(dict(scores))
            b = fresh.run_round(dict(scores))
            assert a.answers == b.answers
            assert bounded.cache.resident <= 3
            total_evictions += a.cache_evictions
        assert total_evictions > 0

    def test_adopted_cache_persists_across_executors(self):
        plan = _chain_plan()
        cache = CrossRoundCache()
        scores = {1: 10.0, 2: 1.0, 3: 5.0}
        first = CrossRoundPlanExecutor(plan, 2, cache=cache)
        first.run_round(dict(scores))
        second = CrossRoundPlanExecutor(plan, 2, cache=cache)
        # The successor inherits values but NOT score history, so its
        # first round must conservatively invalidate everything it sees
        # (it cannot know the cached values match these scores) -- and
        # from the second round on, reuse resumes.
        result = second.run_round(dict(scores))
        assert result.nodes_invalidated == 5
        assert result.answers["P"].advertiser_ids() == (1, 2)
        settled = second.run_round(dict(scores))
        assert settled.nodes_reused == 2
        assert settled.merges_performed == 0


class TestDirtySetSoundness:
    def test_undeclared_score_change_raises(self):
        plan = _chain_plan()
        executor = CrossRoundPlanExecutor(plan, 2)
        executor.run_round({1: 10.0, 2: 1.0, 3: 5.0}, dirty=set())
        with pytest.raises(InvalidPlanError, match="unsound dirty set"):
            executor.run_round({1: 10.0, 2: 99.0, 3: 5.0}, dirty=set())

    def test_over_declared_dirty_set_costs_nothing(self):
        plan = _chain_plan()
        executor = CrossRoundPlanExecutor(plan, 2)
        scores = {1: 10.0, 2: 1.0, 3: 5.0}
        executor.run_round(dict(scores))
        result = executor.run_round(dict(scores), dirty={1, 2, 3})
        assert result.nodes_invalidated == 0
        assert result.nodes_reused == 2

    def test_auto_diff_mode_needs_no_declaration(self):
        plan = _chain_plan()
        executor = CrossRoundPlanExecutor(plan, 2)
        executor.run_round({1: 10.0, 2: 1.0, 3: 5.0})
        result = executor.run_round({1: 10.0, 2: 99.0, 3: 5.0})
        assert list(result.answers["P"].advertiser_ids()) == [2, 1]


class TestWorkAccountingInvariants:
    """Satellite: the base executor *enforces* one merge per node."""

    def test_base_counters_agree_over_random_rounds(self):
        rng = random.Random(3)
        sets = {"q0": ["x0", "x1"], "q1": ["x0", "x1", "x2"]}
        rates = {name: 1.0 for name in sets}
        plan = _greedy_plan(sets, rates)
        collector = MetricsCollector()
        executor = PlanExecutor(plan, 2, collector)
        for _ in range(6):
            executor.run_round(_random_scores(plan.instance.variables, rng))
        assert collector.counter(names.PLAN_MERGES) == collector.counter(
            names.PLAN_NODES
        )
        assert collector.counter(names.PLAN_NODES_REUSED) == 0

    def test_base_checker_rejects_merge_node_mismatch(self):
        executor = PlanExecutor(_chain_plan(), 2)
        bad = ExecutionResult(nodes_materialized=2, merges_performed=1)
        with pytest.raises(InvalidPlanError, match="work-accounting"):
            executor._check_round_invariants(bad)

    def test_base_checker_rejects_cross_round_counters(self):
        executor = PlanExecutor(_chain_plan(), 2)
        bad = ExecutionResult(nodes_reused=1)
        with pytest.raises(InvalidPlanError, match="cross-round"):
            executor._check_round_invariants(bad)

    def test_cached_checker_allows_revalidation_divergence(self):
        executor = CrossRoundPlanExecutor(_chain_plan(), 2)
        ok = ExecutionResult(
            nodes_materialized=3, merges_performed=2, nodes_revalidated=1
        )
        executor._check_round_invariants(ok)  # must not raise
        bad = ExecutionResult(
            nodes_materialized=3, merges_performed=2, nodes_revalidated=0
        )
        with pytest.raises(InvalidPlanError, match="work-accounting"):
            executor._check_round_invariants(bad)


class TestRebindWithMaintainer:
    def _oracle_check(self, executor, scores, k=2):
        result = executor.run_round(dict(scores))
        for query in executor.plan.instance.queries:
            expected = top_k_scan(
                k, [(scores[v], v) for v in sorted(query.variables)]
            )
            assert result.answers[query.name] == expected
        return result

    def test_repair_invalidates_touched_subtree_only(self):
        maintainer = PlanMaintainer(
            {"p": {0, 1, 2}, "q": {2, 3, 4}}, replan_after=100
        )
        executor = CrossRoundPlanExecutor(maintainer.plan, 2)
        maintainer.subscribe(executor.rebind)
        scores = {a: float(10 + a) for a in range(6)}
        self._oracle_check(executor, scores)
        maintainer.add_interest("p", 5)
        assert executor.rebinds == 1
        # Untouched varsets survive the rebind with their values.
        assert executor.cache.resident > 0
        self._oracle_check(executor, scores)

    def test_full_replan_keeps_answers_exact(self):
        maintainer = PlanMaintainer(
            {"p": {0, 1, 2}, "q": {2, 3, 4}, "r": {4, 5, 0}}, replan_after=2
        )
        executor = CrossRoundPlanExecutor(maintainer.plan, 2)
        maintainer.subscribe(executor.rebind)
        scores = {a: float((a * 7) % 11 + 1) for a in range(8)}
        self._oracle_check(executor, scores)
        maintainer.add_interest("p", 6)
        maintainer.add_interest("q", 7)  # triggers the replan
        assert maintainer.replans == 1
        assert executor.rebinds == 2
        self._oracle_check(executor, scores)

    def test_dropped_entries_hit_the_invalidation_counter(self):
        collector = MetricsCollector()
        maintainer = PlanMaintainer(
            {"p": {0, 1, 2}, "q": {2, 3, 4}}, replan_after=100
        )
        executor = CrossRoundPlanExecutor(maintainer.plan, 2, collector)
        maintainer.subscribe(executor.rebind)
        scores = {a: float(10 + a) for a in range(5)}
        executor.run_round(dict(scores))
        before = collector.counter(names.PLAN_NODES_INVALIDATED)
        maintainer.remove_interest("p", 1)
        # The repaired query's old varset no longer exists: at least the
        # old query node's entry must have been dropped and counted.
        assert collector.counter(names.PLAN_NODES_INVALIDATED) > before


@st.composite
def _family_with_dirty(draw):
    sets, rates = draw(query_families(max_queries=4, max_vars=7))
    variables = sorted({v for members in sets.values() for v in members})
    dirty = draw(
        st.sets(st.sampled_from(variables), min_size=1, max_size=len(variables))
    )
    return sets, rates, dirty


class TestDirtyClosureProperty:
    """Satellite: the ancestor closure is sound and minimal.

    Minimality is structural: the closure is *exactly* the nodes whose
    varset intersects the dirty variables, and soundness is semantic:
    any node whose value changes after a perturbation of the dirty
    leaves lies inside the closure -- so invalidating the closure never
    recomputes an unaffected node, and never misses an affected one.
    """

    @given(_family_with_dirty())
    @settings(max_examples=60, deadline=None)
    def test_closure_is_exactly_varset_intersection(self, family):
        sets, rates, dirty = family
        plan = _greedy_plan(sets, rates)
        closure = plan.dirty_closure(dirty)
        expected = {
            node.node_id
            for node in plan.nodes
            if node.varset & frozenset(dirty)
        }
        assert closure == expected

    @given(_family_with_dirty(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_values_outside_closure_never_change(self, family, k):
        sets, rates, dirty = family
        plan = _greedy_plan(sets, rates)
        variables = sorted(plan.instance.variables)
        ids = {v: index for index, v in enumerate(variables)}

        def node_values(scores):
            return {
                node.node_id: top_k_scan(
                    k,
                    [(scores[v], ids[v]) for v in sorted(node.varset)],
                )
                for node in plan.nodes
            }

        before_scores = {v: float(1 + ids[v]) for v in variables}
        after_scores = dict(before_scores)
        for v in dirty:
            after_scores[v] = before_scores[v] + 100.0
        before = node_values(before_scores)
        after = node_values(after_scores)
        closure = plan.dirty_closure(dirty)
        changed = {
            node_id
            for node_id in before
            if before[node_id] != after[node_id]
        }
        # Soundness: everything that changed is inside the closure.
        assert changed <= closure
        # Minimality: everything outside the closure kept its value.
        for node_id in set(before) - closure:
            assert before[node_id] == after[node_id]


class TestAncestorIndex:
    def test_parent_index_inverts_operand_edges(self):
        plan = _chain_plan()
        index = plan.parent_index()
        p = plan.node_for_varset(frozenset({1, 2}))
        g = plan.node_for_varset(frozenset({1, 2, 3}))
        assert index[plan.leaf_of(1)] == (p,)
        assert index[plan.leaf_of(2)] == (p,)
        assert index[plan.leaf_of(3)] == (g,)
        assert index[p] == (g,)
        assert index[g] == ()

    def test_ancestors_include_seeds(self):
        plan = _chain_plan()
        p = plan.node_for_varset(frozenset({1, 2}))
        g = plan.node_for_varset(frozenset({1, 2, 3}))
        assert plan.ancestors_of([p]) == {p, g}

    def test_unknown_node_raises(self):
        plan = _chain_plan()
        with pytest.raises(InvalidPlanError):
            plan.ancestors_of([999])

    def test_dirty_closure_skips_absent_variables(self):
        plan = _chain_plan()
        assert plan.dirty_closure(["not-a-variable"]) == set()
