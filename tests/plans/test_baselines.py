"""Tests for the baseline planners."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.plans.baselines import cse_plan, fragment_only_plan, no_sharing_plan
from repro.plans.cost import (
    expected_cost_upper_bound_no_sharing,
    expected_plan_cost,
)
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from tests.conftest import query_families


@pytest.fixture
def overlap_instance():
    return SharedAggregationInstance.from_sets(
        {"p": ["a", "b", "c"], "q": ["a", "b", "d"]},
        {"p": 0.6, "q": 0.3},
    )


class TestNoSharing:
    def test_cost_matches_closed_form(self, overlap_instance):
        plan = no_sharing_plan(overlap_instance)
        plan.validate()
        closed = expected_cost_upper_bound_no_sharing(
            {q.name: len(q.variables) for q in overlap_instance.queries},
            overlap_instance.search_rates(),
        )
        assert expected_plan_cost(plan) == pytest.approx(closed)

    def test_total_cost_sums_chain_lengths(self, overlap_instance):
        plan = no_sharing_plan(overlap_instance)
        assert plan.total_cost == 2 + 2

    def test_duplicate_labels_permitted(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b"], "q": ["a", "b", "c"]}
        )
        plan = no_sharing_plan(instance)
        # The {a, b} label appears twice: once as p's root, once inside
        # q's chain (a, b sorted first).
        count = sum(
            1
            for node in plan.internal_nodes()
            if node.varset == frozenset({"a", "b"})
        )
        assert count == 2

    @settings(deadline=None, max_examples=30)
    @given(query_families())
    def test_closed_form_always_matches(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        plan = no_sharing_plan(instance)
        closed = expected_cost_upper_bound_no_sharing(
            {q.name: len(q.variables) for q in instance.queries},
            instance.search_rates(),
        )
        assert expected_plan_cost(plan) == pytest.approx(closed)


class TestFragmentOnly:
    def test_between_no_sharing_and_nothing(self, overlap_instance):
        fragment_cost = expected_plan_cost(fragment_only_plan(overlap_instance))
        unshared_cost = expected_plan_cost(no_sharing_plan(overlap_instance))
        assert fragment_cost <= unshared_cost + 1e-9

    def test_single_fragment_query_assigned_directly(self):
        instance = SharedAggregationInstance.from_sets(
            {"only": ["a", "b", "c"]}
        )
        plan = fragment_only_plan(instance)
        plan.validate()
        assert plan.total_cost == 2

    @settings(deadline=None, max_examples=30)
    @given(query_families())
    def test_valid_and_never_worse_than_no_sharing(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        plan = fragment_only_plan(instance)
        plan.validate()
        assert expected_plan_cost(plan) <= expected_plan_cost(
            no_sharing_plan(instance)
        ) + 1e-9


class TestCSE:
    def test_shares_common_suffixes_only(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["b", "c"]}
        )
        plan = cse_plan(instance)
        plan.validate()
        # q = (b, c) is a suffix of p's sorted chain a (b c): shared.
        assert plan.total_cost == 2

    def test_no_sharing_for_prefix_overlap(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["a", "b", "d"]}
        )
        plan = cse_plan(instance)
        plan.validate()
        # Common part {a, b} is a prefix, not a suffix: no syntactic
        # sharing available; 2 + 2 nodes.
        assert plan.total_cost == 4

    @settings(deadline=None, max_examples=30)
    @given(query_families())
    def test_valid_and_never_worse_than_no_sharing(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        plan = cse_plan(instance)
        plan.validate()
        assert plan.total_cost <= no_sharing_plan(instance).total_cost
