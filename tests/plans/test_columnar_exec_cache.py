"""Unit tests for cross-round :class:`ColumnarFragmentExecutor` caching.

The cross-round mode keeps fragment top-k lists alive between rounds
behind a row-granular dirty mask -- the array-space transcription of
:class:`repro.plans.executor.CrossRoundPlanExecutor`'s dirty-cone walk.
These tests pin the cache's unit semantics (reuse, invalidation,
revalidation, verify, feed hand-off, bypass); the engine differential
and the hypothesis dirty-mask property live in
``tests/engine/test_layout_differential.py``.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.advertiser import Advertiser
from repro.core.columnar import ColumnarStore
from repro.engine.changefeed import BidChanged, ChangeFeed
from repro.errors import InvalidPlanError
from repro.instrument import MetricsCollector, names
from repro.plans.columnar_exec import ColumnarFragmentExecutor
from repro.plans.instance import AggregateQuery, SharedAggregationInstance

# Two overlapping queries plus a trivial one: fragments {1,2}, {3,4},
# {5,6} -- q1 and q2 share the {3,4} fragment, t7 is a single leaf.
IDS = [1, 2, 3, 4, 5, 6, 7]


def _instance() -> SharedAggregationInstance:
    return SharedAggregationInstance(
        [
            AggregateQuery("q1", {1, 2, 3, 4}),
            AggregateQuery("q2", {3, 4, 5, 6}),
            AggregateQuery("t7", {7}),
        ]
    )


def _store() -> ColumnarStore:
    return ColumnarStore(
        [Advertiser(i, 1.0, phrases=frozenset({"p"})) for i in IDS]
    )


def _executor(store, collector=None, **kw) -> ColumnarFragmentExecutor:
    kwargs = dict(cross_round=True, verify=True)
    kwargs.update(kw)
    if collector is None:
        return ColumnarFragmentExecutor(_instance(), store, 3, **kwargs)
    return ColumnarFragmentExecutor(_instance(), store, 3, collector, **kwargs)


def _scores(store, by_id):
    scores = np.zeros(store.size, dtype=np.float64)
    for advertiser_id, score in by_id.items():
        scores[store.row_of(advertiser_id)] = score
    return scores


ALL = ["q1", "q2", "t7"]


def _entries(result):
    return {
        name: [(e.score, e.advertiser_id) for e in ranking.entries]
        for name, ranking in result.answers.items()
    }


class TestCrossRoundIdentity:
    def test_cached_answers_equal_fresh_every_round(self):
        rng = random.Random(3)
        store = _store()
        cached = _executor(store)
        fresh = ColumnarFragmentExecutor(_instance(), store, 3)
        by_id = {i: float(rng.randint(1, 9)) for i in IDS}
        for _ in range(12):
            dirty = {i for i in IDS if rng.random() < 0.3}
            for i in dirty:
                by_id[i] = float(rng.randint(1, 9))
            scores = _scores(store, by_id)
            result_cached = cached.run_round(scores, ALL, dirty=dirty)
            result_fresh = fresh.run_round(scores, ALL)
            assert _entries(result_cached) == _entries(result_fresh)

    def test_clean_round_is_all_reuse(self):
        collector = MetricsCollector()
        store = _store()
        executor = _executor(store, collector)
        scores = _scores(store, {i: float(10 * i) for i in IDS})
        first = executor.run_round(scores, ALL, dirty=set(IDS))
        assert first.advertisers_scanned == len(IDS)
        # q2's second touch of the shared {3,4} fragment (scanned while
        # answering q1) is already a reuse -- the within-round sharing.
        assert first.nodes_reused == 1
        second = executor.run_round(scores, ALL, dirty=set())
        # Nothing moved: every cover touch (q1's 2 fragments, q2's 2,
        # the trivial leaf) comes straight from the cache, and both
        # folds revalidate by operand identity.
        assert second.advertisers_scanned == 0
        assert second.merges_performed == 0
        assert second.nodes_reused == 5
        assert second.nodes_revalidated == 2
        assert _entries(first) == _entries(second)
        assert collector.counter(names.PLAN_NODES_REUSED) == 6
        assert collector.counter(names.PLAN_REVALIDATIONS) == 2

    def test_dirty_row_rescans_only_its_fragment(self):
        store = _store()
        executor = _executor(store)
        by_id = {i: float(10 * i) for i in IDS}
        executor.run_round(_scores(store, by_id), ALL, dirty=set(IDS))
        by_id[5] = 95.0  # fragment {5,6}: only q2's private fragment
        result = executor.run_round(_scores(store, by_id), ALL, dirty={5})
        assert result.nodes_invalidated == 1
        assert result.advertisers_scanned == 2  # rows 5 and 6 only
        # q1's {1,2} + the shared {3,4} twice (once per cover) + leaf 7.
        assert result.nodes_reused == 4
        assert result.nodes_revalidated == 1  # q1's fold; q2 re-merges
        assert result.answers["q2"].entries[0].advertiser_id == 5

    def test_epochs_bump_only_on_actual_change(self):
        store = _store()
        executor = _executor(store)
        scores = _scores(store, {i: 1.0 for i in IDS})
        executor.run_round(scores, ALL, dirty=set(IDS))
        row = store.row_of(3)
        assert executor.row_epoch(row) == 1
        # Declared but unchanged: no bump, no fragment invalidation.
        result = executor.run_round(scores, ALL, dirty={3})
        assert executor.row_epoch(row) == 1
        assert result.nodes_invalidated == 0
        assert len(executor.dirty_rows_last_round()) == 0


class TestVerify:
    def test_undeclared_change_raises(self):
        store = _store()
        executor = _executor(store)
        by_id = {i: 1.0 for i in IDS}
        executor.run_round(_scores(store, by_id), ALL, dirty=set(IDS))
        by_id[2] = 7.0
        with pytest.raises(InvalidPlanError, match="unsound dirty set"):
            executor.run_round(_scores(store, by_id), ALL, dirty=set())

    def test_unverified_keeps_snapshot_until_declared(self):
        store = _store()
        executor = _executor(store, verify=False)
        by_id = {i: float(i) for i in IDS}
        executor.run_round(_scores(store, by_id), ALL, dirty=set(IDS))
        by_id[1] = 99.0  # undeclared: trusted unchanged
        result = executor.run_round(_scores(store, by_id), ALL, dirty=set())
        assert result.answers["q1"].entries[0].advertiser_id == 4
        # The covering declaration repairs the cache (self-healing).
        result = executor.run_round(_scores(store, by_id), ALL, dirty={1})
        assert result.answers["q1"].entries[0].advertiser_id == 1

    def test_dirty_declaration_requires_cross_round(self):
        store = _store()
        executor = ColumnarFragmentExecutor(_instance(), store, 3)
        with pytest.raises(InvalidPlanError, match="cross_round"):
            executor.run_round(_scores(store, {}), ALL, dirty={1})


class TestChangeFeed:
    def test_connect_requires_cross_round(self):
        executor = ColumnarFragmentExecutor(_instance(), _store(), 3)
        with pytest.raises(InvalidPlanError, match="cross_round"):
            executor.connect(ChangeFeed())

    def test_connected_feed_rejects_dirty_argument(self):
        store = _store()
        executor = _executor(store)
        executor.connect(ChangeFeed())
        with pytest.raises(InvalidPlanError, match="change feed"):
            executor.run_round(_scores(store, {}), ALL, dirty={1})

    def test_events_absorbed_only_when_scored(self):
        store = _store()
        executor = _executor(store)
        feed = ChangeFeed()
        executor.connect(feed)
        by_id = {i: float(i) for i in IDS}
        executor.run_round(_scores(store, by_id), ALL)
        feed.publish(BidChanged(advertiser_id=2))
        feed.publish(BidChanged(advertiser_id=6))
        by_id[2] = 50.0
        by_id[6] = 60.0
        # Round scoring only q1's rows: advertiser 6 is not scored, so
        # its event must survive in the pending set.
        result = executor.run_round(
            _scores(store, by_id),
            ["q1"],
            rows=store.rows_of([1, 2, 3, 4]),
        )
        assert executor.pending_dirty == frozenset({6})
        assert result.answers["q1"].entries[0].advertiser_id == 2
        result = executor.run_round(_scores(store, by_id), ALL)
        assert executor.pending_dirty == frozenset()
        assert result.answers["q2"].entries[0].advertiser_id == 6


class _ForceBypass:
    def __init__(self):
        self.bypasses = 0

    def should_bypass(self):
        return True

    def record_bypass(self):
        self.bypasses += 1

    def observe_round(self, dirty, population, working_set):
        pass


class TestAutotunerBypass:
    def test_bypass_runs_fresh_but_absorbs_scores(self):
        store = _store()
        tuner = _ForceBypass()
        executor = _executor(store, autotuner=tuner)
        by_id = {i: float(i) for i in IDS}
        result = executor.run_round(
            _scores(store, by_id), ALL, dirty=set(IDS)
        )
        assert result.bypassed
        assert tuner.bypasses == 1
        assert executor.bypass_rounds == 1
        assert result.answers["q1"].entries[0].advertiser_id == 4
        # Scores were absorbed during the bypass: an undeclared change
        # afterwards is still caught by the verify cross-check.
        by_id[3] = 44.0
        with pytest.raises(InvalidPlanError, match="unsound dirty set"):
            executor.run_round(_scores(store, by_id), ALL, dirty=set())
