"""Tests for plan serialization round-trips."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import InvalidPlanError
from repro.plans.baselines import no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.plans.serialize import dumps, loads, plan_from_dict, plan_to_dict
from tests.conftest import query_families


@pytest.fixture
def plan():
    instance = SharedAggregationInstance(
        [
            AggregateQuery("pq", [1, 2, 3], 0.5),
            AggregateQuery("qr", [2, 3, 4], 0.75),
            AggregateQuery("solo", [9], 0.1),
        ]
    )
    return greedy_shared_plan(instance)


class TestRoundTrip:
    def test_json_round_trip_preserves_structure(self, plan):
        restored = loads(dumps(plan))
        assert restored.total_cost == plan.total_cost
        assert [n.varset for n in restored.nodes] == [
            n.varset for n in plan.nodes
        ]
        assert expected_plan_cost(restored) == pytest.approx(
            expected_plan_cost(plan)
        )

    def test_round_trip_preserves_answers(self, plan):
        scores = {v: float(hash(v) % 17) for v in plan.instance.variables}
        original = PlanExecutor(plan, 2).run_round(scores)
        restored = PlanExecutor(loads(dumps(plan)), 2).run_round(scores)
        assert original.answers == restored.answers
        assert original.nodes_materialized == restored.nodes_materialized

    def test_duplicate_label_plans_survive(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": [1, 2], "q": [1, 2, 3]}
        )
        plan = no_sharing_plan(instance)
        restored = loads(dumps(plan))
        assert restored.total_cost == plan.total_cost == 3
        assert expected_plan_cost(restored) == pytest.approx(
            expected_plan_cost(plan)
        )

    def test_string_variables(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["alice", "bob"], "q": ["bob", "carol"]}
        )
        plan = greedy_shared_plan(instance)
        restored = loads(dumps(plan))
        assert restored.instance.variables == instance.variables

    @settings(
        deadline=None,
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query_families(max_queries=4, max_vars=6))
    def test_round_trip_property(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        plan = greedy_shared_plan(instance)
        restored = loads(dumps(plan))
        assert restored.total_cost == plan.total_cost
        assert expected_plan_cost(restored) == pytest.approx(
            expected_plan_cost(plan)
        )


class TestErrors:
    def test_invalid_json_rejected(self):
        with pytest.raises(InvalidPlanError):
            loads("{not json")

    def test_wrong_version_rejected(self, plan):
        data = plan_to_dict(plan)
        data["version"] = 99
        with pytest.raises(InvalidPlanError):
            plan_from_dict(data)

    def test_malformed_nodes_rejected(self, plan):
        data = plan_to_dict(plan)
        data["internal_nodes"] = [{"id": 1}]
        with pytest.raises(InvalidPlanError):
            plan_from_dict(data)

    def test_incomplete_plan_rejected_on_load(self, plan):
        data = plan_to_dict(plan)
        data["internal_nodes"] = []
        with pytest.raises(InvalidPlanError):
            plan_from_dict(data)

    def test_unserializable_variable_rejected(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": [(1, 2), (3, 4)]}
        )
        plan = greedy_shared_plan(instance)
        with pytest.raises(InvalidPlanError):
            dumps(plan)
