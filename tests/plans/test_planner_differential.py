"""Differential tests: the lazy planner must equal the naive oracle.

The CELF-style lazy engine re-scores only dirty candidate unions and
memoizes greedy covers, but it must build *byte-identical* plans to the
naive full-rescan engine -- same nodes, same operand pairs, same query
assignment -- across pair strategies and the disjointness flag.  These
tests compare serialized plans over a 50-seed random workload and pin
the work-accounting invariants the laziness is supposed to buy.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.errors import PlanConstructionError
from repro.plans.greedy_planner import GreedyPlannerStats, greedy_shared_plan
from repro.plans.instance import SharedAggregationInstance
from repro.plans.serialize import dumps
from tests.conftest import query_families


def _random_instance(seed: int) -> SharedAggregationInstance:
    """A moderately dense random instance (int universe, 2-6 queries)."""
    rng = random.Random(seed)
    num_vars = rng.randint(4, 12)
    universe = list(range(num_vars))
    sets = {}
    for index in range(rng.randint(2, 6)):
        size = rng.randint(2, max(2, num_vars - 1))
        sets[f"q{index}"] = rng.sample(universe, size)
    rates = {name: round(rng.uniform(0.05, 1.0), 3) for name in sets}
    return SharedAggregationInstance.from_sets(sets, rates)


@pytest.mark.parametrize("pair_strategy", ["full", "cover"])
@pytest.mark.parametrize("require_disjoint", [False, True])
def test_lazy_matches_naive_50_seeds(pair_strategy, require_disjoint):
    for seed in range(50):
        instance = _random_instance(seed)
        naive_stats = GreedyPlannerStats()
        lazy_stats = GreedyPlannerStats()
        naive = greedy_shared_plan(
            instance,
            pair_strategy=pair_strategy,
            stats=naive_stats,
            require_disjoint=require_disjoint,
            planner="naive",
        )
        lazy = greedy_shared_plan(
            instance,
            pair_strategy=pair_strategy,
            stats=lazy_stats,
            require_disjoint=require_disjoint,
            planner="lazy",
        )
        assert dumps(naive) == dumps(lazy), (
            f"plan divergence at seed={seed} strategy={pair_strategy} "
            f"disjoint={require_disjoint}"
        )
        # The whole point of laziness: never score more pairs than the
        # oracle's full rescan, and never run more covers.
        assert lazy_stats.pairs_scored <= naive_stats.pairs_evaluated
        assert lazy_stats.covers_computed <= naive_stats.covers_computed


def test_structural_stats_agree():
    """Plan-shape counters (not work counters) are engine-independent."""
    for seed in range(10):
        instance = _random_instance(seed)
        naive_stats = GreedyPlannerStats()
        lazy_stats = GreedyPlannerStats()
        greedy_shared_plan(instance, stats=naive_stats, planner="naive")
        greedy_shared_plan(instance, stats=lazy_stats, planner="lazy")
        assert naive_stats.fragment_nodes == lazy_stats.fragment_nodes
        assert naive_stats.completion_steps == lazy_stats.completion_steps
        assert naive_stats.query_completions == lazy_stats.query_completions
        assert naive_stats.direct_completions == lazy_stats.direct_completions


@settings(deadline=None, max_examples=60)
@given(family=query_families())
def test_pairs_scored_never_exceeds_naive_evaluations(family):
    sets, rates = family
    instance = SharedAggregationInstance.from_sets(sets, rates)
    naive_stats = GreedyPlannerStats()
    lazy_stats = GreedyPlannerStats()
    naive = greedy_shared_plan(instance, stats=naive_stats, planner="naive")
    lazy = greedy_shared_plan(instance, stats=lazy_stats, planner="lazy")
    assert dumps(naive) == dumps(lazy)
    assert lazy_stats.pairs_scored <= naive_stats.pairs_evaluated
    # In either engine, every evaluation is a scoring and vice versa for
    # naive; lazy additionally reports what it skipped.
    assert naive_stats.pairs_scored == naive_stats.pairs_evaluated
    assert naive_stats.pairs_skipped_lazy == 0
    assert naive_stats.covers_memo_hits == 0
    assert lazy_stats.pairs_skipped_lazy >= 0


def test_unknown_planner_rejected():
    instance = SharedAggregationInstance.from_sets(
        {"q0": ["a", "b"]}, {"q0": 1.0}
    )
    with pytest.raises(PlanConstructionError):
        greedy_shared_plan(instance, planner="eager")
