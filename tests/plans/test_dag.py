"""Tests for the plan DAG structure and validation."""

from __future__ import annotations

import pytest

from repro.errors import InvalidPlanError
from repro.plans.dag import Plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance


@pytest.fixture
def instance():
    return SharedAggregationInstance(
        [
            AggregateQuery("pq", ["a", "b"], 0.5),
            AggregateQuery("qr", ["b", "c"], 0.25),
        ]
    )


class TestConstruction:
    def test_leaves_seeded(self, instance):
        plan = Plan(instance)
        assert plan.total_cost == 0
        assert {n.variable for n in plan.nodes} == {"a", "b", "c"}
        for variable in "abc":
            leaf = plan.node(plan.leaf_of(variable))
            assert leaf.is_leaf
            assert leaf.varset == frozenset({variable})

    def test_unknown_leaf_raises(self, instance):
        with pytest.raises(InvalidPlanError):
            Plan(instance).leaf_of("zzz")

    def test_add_internal(self, instance):
        plan = Plan(instance)
        node_id = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        node = plan.node(node_id)
        assert node.varset == frozenset({"a", "b"})
        assert not node.is_leaf
        assert plan.total_cost == 1

    def test_add_internal_reuses_by_varset(self, instance):
        plan = Plan(instance)
        first = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        second = plan.add_internal(plan.leaf_of("b"), plan.leaf_of("a"))
        assert first == second
        assert plan.total_cost == 1

    def test_add_internal_force_new_duplicates(self, instance):
        plan = Plan(instance)
        first = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        second = plan.add_internal(
            plan.leaf_of("a"), plan.leaf_of("b"), reuse=False
        )
        assert first != second
        assert plan.total_cost == 2

    def test_self_aggregation_rejected(self, instance):
        plan = Plan(instance)
        leaf = plan.leaf_of("a")
        with pytest.raises(InvalidPlanError):
            plan.add_internal(leaf, leaf)

    def test_unknown_node_raises(self, instance):
        plan = Plan(instance)
        with pytest.raises(InvalidPlanError):
            plan.node(999)

    def test_add_chain(self, instance):
        plan = Plan(instance)
        root = plan.add_chain(
            [plan.leaf_of("a"), plan.leaf_of("b"), plan.leaf_of("c")]
        )
        assert plan.node(root).varset == frozenset({"a", "b", "c"})
        assert plan.total_cost == 2

    def test_add_chain_empty_raises(self, instance):
        with pytest.raises(InvalidPlanError):
            Plan(instance).add_chain([])

    def test_leaf_variable_accessor(self, instance):
        plan = Plan(instance)
        node_id = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        with pytest.raises(InvalidPlanError):
            plan.node(node_id).variable  # noqa: B018 - accessor must raise


class TestQueries:
    def test_query_answered_automatically_by_varset(self, instance):
        plan = Plan(instance)
        assert len(plan.missing_queries()) == 2
        plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        assert [q.name for q in plan.answered_queries()] == ["pq"]
        assert [q.name for q in plan.missing_queries()] == ["qr"]

    def test_assign_query_override(self, instance):
        plan = Plan(instance)
        first = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        dup = plan.add_internal(
            plan.leaf_of("a"), plan.leaf_of("b"), reuse=False
        )
        plan.assign_query("pq", dup)
        assert plan.query_node(instance.query_by_name("pq")) == dup != first

    def test_assign_query_varset_mismatch_rejected(self, instance):
        plan = Plan(instance)
        node = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("c"))
        with pytest.raises(InvalidPlanError):
            plan.assign_query("pq", node)

    def test_trivial_query_answered_by_leaf(self):
        instance = SharedAggregationInstance(
            [AggregateQuery("big", ["a", "b"]), AggregateQuery("one", ["a"])]
        )
        plan = Plan(instance)
        query = instance.query_by_name("one")
        assert plan.query_node(query) == plan.leaf_of("a")


class TestValidation:
    def test_incomplete_plan_fails_completeness(self, instance):
        plan = Plan(instance)
        with pytest.raises(InvalidPlanError):
            plan.validate()
        plan.validate(require_complete=False)

    def test_complete_plan_validates(self, instance):
        plan = Plan(instance)
        plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        plan.add_internal(plan.leaf_of("b"), plan.leaf_of("c"))
        plan.validate()

    def test_extra_cost(self, instance):
        plan = Plan(instance)
        ab = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        plan.add_internal(plan.leaf_of("b"), plan.leaf_of("c"))
        plan.add_internal(ab, plan.leaf_of("c"))  # an extra node
        assert plan.total_cost == 3
        assert plan.extra_cost == 1


class TestDownstreamQueries:
    def test_downstream_sets(self, instance):
        plan = Plan(instance)
        ab = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        bc = plan.add_internal(plan.leaf_of("b"), plan.leaf_of("c"))
        downstream = plan.downstream_queries()
        assert downstream[ab] == {"pq"}
        assert downstream[bc] == {"qr"}
        assert downstream[plan.leaf_of("b")] == {"pq", "qr"}
        assert downstream[plan.leaf_of("a")] == {"pq"}

    def test_shared_interior_node_feeds_both(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("q1", ["a", "b", "c"]),
                AggregateQuery("q2", ["a", "b", "d"]),
            ]
        )
        plan = Plan(instance)
        ab = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        plan.add_internal(ab, plan.leaf_of("c"))
        plan.add_internal(ab, plan.leaf_of("d"))
        downstream = plan.downstream_queries()
        assert downstream[ab] == {"q1", "q2"}
