"""Unit tests for the interned bitmask varset layer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidPlanError
from repro.plans.varsets import (
    SubsetIndex,
    VarSetInterner,
    are_disjoint_masks,
    is_subset_mask,
    iter_bit_ids,
)


class TestBitOps:
    def test_iter_bit_ids_ascending(self):
        assert list(iter_bit_ids(0b101101)) == [0, 2, 3, 5]
        assert list(iter_bit_ids(0)) == []

    def test_iter_bit_ids_wide_mask(self):
        mask = (1 << 200) | (1 << 64) | 1
        assert list(iter_bit_ids(mask)) == [0, 64, 200]

    @given(st.sets(st.integers(min_value=0, max_value=120)))
    def test_iter_bit_ids_matches_set(self, bits):
        mask = sum(1 << b for b in bits)
        assert list(iter_bit_ids(mask)) == sorted(bits)

    @given(
        st.sets(st.integers(min_value=0, max_value=60)),
        st.sets(st.integers(min_value=0, max_value=60)),
    )
    def test_subset_and_disjoint_match_sets(self, a, b):
        mask_a = sum(1 << x for x in a)
        mask_b = sum(1 << x for x in b)
        assert is_subset_mask(mask_a, mask_b) == (a <= b)
        assert are_disjoint_masks(mask_a, mask_b) == (not (a & b))


class TestVarSetInterner:
    def test_ids_follow_repr_order(self):
        interner = VarSetInterner(["b", "a", "c"])
        assert interner.variables == ("a", "b", "c")
        assert [interner.variable_id(v) for v in ("a", "b", "c")] == [0, 1, 2]

    def test_int_variables_sort_by_repr(self):
        # repr order of ints is string order: 0, 1, 10, 2, ...
        interner = VarSetInterner(range(11))
        assert interner.variables[:4] == (0, 1, 10, 2)

    def test_mask_roundtrip(self):
        interner = VarSetInterner("abcdef")
        mask = interner.mask_of({"b", "e", "f"})
        assert interner.members(mask) == ("b", "e", "f")
        assert interner.frozenset_of(mask) == frozenset({"b", "e", "f"})

    def test_frozenset_cached(self):
        interner = VarSetInterner("ab")
        mask = interner.mask_of({"a", "b"})
        assert interner.frozenset_of(mask) is interner.frozenset_of(mask)

    def test_unknown_variable_raises(self):
        interner = VarSetInterner("ab")
        with pytest.raises(InvalidPlanError):
            interner.variable_id("z")
        with pytest.raises(InvalidPlanError):
            interner.mask_of({"a", "z"})

    def test_duplicate_variables_raise(self):
        with pytest.raises(InvalidPlanError):
            VarSetInterner(["a", "a"])

    def test_sort_key_strict_total_order(self):
        interner = VarSetInterner("abcd")
        masks = range(1, 16)
        keys = [interner.sort_key(m) for m in masks]
        assert len(set(keys)) == len(keys)
        # The id-tuple key equals the sorted-id tuple.
        for mask, key in zip(masks, keys):
            assert key == tuple(iter_bit_ids(mask))

    def test_sort_key_cached(self):
        interner = VarSetInterner("abc")
        assert interner.sort_key(0b101) is interner.sort_key(0b101)


class TestSubsetIndex:
    def test_add_dedups(self):
        index = SubsetIndex()
        assert index.add(0b11)
        assert not index.add(0b11)
        assert len(index) == 1
        assert 0b11 in index
        assert 0b10 not in index

    def test_subsets_of_matches_bruteforce(self):
        index = SubsetIndex()
        masks = [0b1, 0b10, 0b11, 0b101, 0b110, 0b111, 0b1111, 0b1000]
        for mask in masks:
            index.add(mask)
        for target in range(16):
            expected = sorted(
                (m for m in masks if not (m & ~target)),
                key=lambda m: m.bit_count(),
            )
            got = index.subsets_of(target)
            assert sorted(got) == sorted(m for m in masks if not (m & ~target))
            # Grouped by ascending popcount.
            assert [m.bit_count() for m in got] == [
                m.bit_count() for m in expected
            ]

    def test_strict_excludes_target(self):
        index = SubsetIndex()
        index.add(0b111)
        index.add(0b011)
        assert index.subsets_of(0b111, strict=True) == [0b011]
        assert 0b111 in index.subsets_of(0b111)

    @given(
        st.lists(st.integers(min_value=1, max_value=255), max_size=30),
        st.integers(min_value=0, max_value=255),
    )
    def test_subsets_of_property(self, masks, target):
        index = SubsetIndex()
        for mask in masks:
            index.add(mask)
        got = index.subsets_of(target)
        assert set(got) == {m for m in masks if not (m & ~target)}
        assert len(got) == len(set(got))
