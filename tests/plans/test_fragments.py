"""Tests for fragment identification (stage 1 of the heuristic)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.plans.fragments import (
    Fragment,
    fragment_cover_counts,
    identify_fragments,
)
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from tests.conftest import query_families


class TestShoeStoreFragments:
    """The Section II-B example: general, sports, fashion stores."""

    @pytest.fixture
    def instance(self):
        general = [f"g{i}" for i in range(6)]
        sports = [f"s{i}" for i in range(3)]
        fashion = [f"f{i}" for i in range(2)]
        return SharedAggregationInstance(
            [
                AggregateQuery("hiking boots", general + sports),
                AggregateQuery("high-heels", general + fashion),
            ]
        )

    def test_three_fragments(self, instance):
        fragments = identify_fragments(instance)
        assert len(fragments) == 3

    def test_fragment_sizes(self, instance):
        sizes = sorted(len(f) for f in identify_fragments(instance))
        assert sizes == [2, 3, 6]

    def test_fragment_query_names(self, instance):
        fragments = {
            f.query_names: f.variables for f in identify_fragments(instance)
        }
        assert frozenset(
            fragments[("high-heels", "hiking boots")]
        ) == frozenset({f"g{i}" for i in range(6)})
        assert fragments[("hiking boots",)] == frozenset(
            {f"s{i}" for i in range(3)}
        )
        assert fragments[("high-heels",)] == frozenset({"f0", "f1"})

    def test_cover_counts(self, instance):
        fragments = identify_fragments(instance)
        counts = fragment_cover_counts(instance, fragments)
        assert counts == {"hiking boots": 2, "high-heels": 2}


class TestFragmentProperties:
    def test_variable_in_no_query_excluded(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("q", ["a", "b"]),
                AggregateQuery("solo", ["z"]),  # trivial
            ]
        )
        fragments = identify_fragments(instance)
        all_vars = set().union(*(f.variables for f in fragments))
        assert "z" not in all_vars

    @settings(deadline=None, max_examples=40)
    @given(query_families())
    def test_fragments_partition_active_variables(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        fragments = identify_fragments(instance)
        seen = set()
        for fragment in fragments:
            assert fragment.variables, "fragments are non-empty"
            assert not (seen & fragment.variables), "fragments are disjoint"
            seen |= fragment.variables
        active = {
            v
            for v in instance.variables
            if any(instance.membership_signature(v))
        }
        assert seen == active

    @settings(deadline=None, max_examples=40)
    @given(query_families())
    def test_same_fragment_means_same_signature(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        for fragment in identify_fragments(instance):
            signatures = {
                instance.membership_signature(v) for v in fragment.variables
            }
            assert len(signatures) == 1
            assert signatures.pop() == fragment.signature

    @settings(deadline=None, max_examples=40)
    @given(query_families())
    def test_queries_are_disjoint_unions_of_fragments(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        fragments = identify_fragments(instance)
        for index, query in enumerate(instance.queries):
            pieces = [f.variables for f in fragments if f.signature[index]]
            union = set().union(*pieces) if pieces else set()
            assert union == set(query.variables)
            assert sum(len(p) for p in pieces) == len(query.variables)

    def test_fragment_count_at_most_variables(self):
        instance = SharedAggregationInstance.from_sets(
            {
                "q1": ["a", "b", "c"],
                "q2": ["b", "c", "d"],
                "q3": ["c", "d", "a"],
            }
        )
        fragments = identify_fragments(instance)
        assert len(fragments) <= len(instance.variables)
