"""Tests for the expected-materialization cost model, including the
Monte-Carlo agreement property between the closed form and the executor."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.plans.cost import (
    expected_cost_upper_bound_no_sharing,
    expected_plan_cost,
    node_materialization_probability,
    per_node_expected_cost,
)
from repro.plans.dag import Plan
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from tests.conftest import query_families


class TestNodeProbability:
    def test_single_query(self):
        assert node_materialization_probability(["q"], {"q": 0.3}) == pytest.approx(0.3)

    def test_independent_union(self):
        prob = node_materialization_probability(
            ["p", "q"], {"p": 0.5, "q": 0.5}
        )
        assert prob == pytest.approx(0.75)

    def test_no_queries_never_materialized(self):
        assert node_materialization_probability([], {}) == 0.0

    def test_certain_query_dominates(self):
        assert node_materialization_probability(
            ["p", "q"], {"p": 1.0, "q": 0.1}
        ) == pytest.approx(1.0)


class TestExpectedPlanCost:
    def test_hand_computed_example(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("q1", ["a", "b", "c"], 0.8),
                AggregateQuery("q2", ["a", "b", "d"], 0.5),
            ]
        )
        plan = Plan(instance)
        ab = plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        plan.add_internal(ab, plan.leaf_of("c"))
        plan.add_internal(ab, plan.leaf_of("d"))
        # ab: 1-(1-.8)(1-.5)=0.9; abc: 0.8; abd: 0.5.
        assert expected_plan_cost(plan) == pytest.approx(0.9 + 0.8 + 0.5)

    def test_per_node_costs_exclude_leaves(self):
        instance = SharedAggregationInstance(
            [AggregateQuery("q", ["a", "b"], 0.4)]
        )
        plan = Plan(instance)
        plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        costs = per_node_expected_cost(plan)
        assert len(costs) == 1
        assert list(costs.values())[0] == pytest.approx(0.4)

    def test_zero_rate_query_node_costs_nothing(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("q", ["a", "b"], 1.0),
                AggregateQuery("r", ["b", "c"], 0.0),
            ]
        )
        plan = Plan(instance)
        plan.add_internal(plan.leaf_of("a"), plan.leaf_of("b"))
        dead = plan.add_internal(plan.leaf_of("b"), plan.leaf_of("c"))
        costs = per_node_expected_cost(plan)
        assert costs[dead] == pytest.approx(0.0)
        assert expected_plan_cost(plan) == pytest.approx(1.0)

    def test_no_sharing_closed_form(self):
        sizes = {"p": 4, "q": 3}
        rates = {"p": 0.5, "q": 1.0}
        assert expected_cost_upper_bound_no_sharing(sizes, rates) == pytest.approx(
            0.5 * 3 + 1.0 * 2
        )

    def test_cost_monotone_in_search_rate(self):
        def cost_at(rate):
            instance = SharedAggregationInstance(
                [
                    AggregateQuery("q1", ["a", "b", "c"], rate),
                    AggregateQuery("q2", ["a", "b", "d"], rate),
                ]
            )
            return expected_plan_cost(greedy_shared_plan(instance))

        costs = [cost_at(r) for r in (0.1, 0.4, 0.7, 1.0)]
        assert all(x <= y + 1e-12 for x, y in zip(costs, costs[1:]))


class TestEmpiricalAgreement:
    @settings(
        deadline=None,
        max_examples=8,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query_families(max_queries=4, max_vars=6))
    def test_executor_average_matches_closed_form(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        plan = greedy_shared_plan(instance)
        executor = PlanExecutor(plan, 2)
        scores = {v: 1.0 for v in instance.variables}
        rounds = 3000
        empirical = executor.average_cost(scores, rounds, random.Random(42))
        closed = expected_plan_cost(plan)
        # Bernoulli average over `rounds` rounds: generous tolerance.
        spread = max(1.0, closed)
        assert abs(empirical - closed) < 0.15 * spread + 0.2
