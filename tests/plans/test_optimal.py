"""Tests for the exhaustive optimal planner (small instances only)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.plans.cost import expected_plan_cost
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.plans.optimal import optimal_plan, optimal_plan_size
from tests.conftest import query_families


class TestOptimalPlanSize:
    def test_single_query(self):
        instance = SharedAggregationInstance.from_sets({"q": ["a", "b", "c"]})
        assert optimal_plan_size(instance) == 2

    def test_nested_queries(self):
        instance = SharedAggregationInstance.from_sets(
            {"inner": ["a", "b"], "outer": ["a", "b", "c"]}
        )
        assert optimal_plan_size(instance) == 2

    def test_disjoint_queries(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b"], "q": ["c", "d"]}
        )
        assert optimal_plan_size(instance) == 2

    def test_overlap_pays_one_extra(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["a", "b", "d"]}
        )
        # ab, abc, abd: 3 nodes (not 4).
        assert optimal_plan_size(instance) == 3

    def test_three_pairwise_overlapping(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b"], "q": ["b", "c"], "r": ["a", "c"]}
        )
        assert optimal_plan_size(instance) == 3


class TestOptimalPlan:
    def test_returns_valid_min_size_plan(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["a", "b", "d"]}
        )
        plan = optimal_plan(instance)
        plan.validate()
        assert plan.total_cost == 3

    def test_probabilistic_structure_choice(self):
        """With sr(q2) tiny, the optimum builds q3 = q1 ⊕ d rather than
        sharing q2's {c, d} node into q3."""
        instance = SharedAggregationInstance(
            [
                AggregateQuery("q1", ["a", "b", "c"], 1.0),
                AggregateQuery("q2", ["c", "d"], 0.01),
                AggregateQuery("q3", ["a", "b", "c", "d"], 1.0),
            ]
        )
        plan = optimal_plan(instance)
        cost = expected_plan_cost(plan)
        # Four nodes are unavoidable: ab (1.0, feeds q1 and q3), abc
        # (1.0), cd (0.01, q2 only), abcd (1.0).  Building abcd from
        # abc + the d leaf keeps cd's probability at 0.01; building it
        # from abc + cd would raise cd's cost to 1.0 (total 4.0).
        assert cost == pytest.approx(3.01, abs=1e-6)
        q3_node = plan.node_for_varset(frozenset({"a", "b", "c", "d"}))
        node = plan.node(q3_node)
        children = {plan.node(node.left).varset, plan.node(node.right).varset}
        assert frozenset({"a", "b", "c"}) in children

    @settings(
        deadline=None,
        max_examples=10,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query_families(max_queries=3, max_vars=5))
    def test_optimal_at_most_greedy(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        greedy = greedy_shared_plan(instance)
        best = optimal_plan(instance)
        best.validate()
        assert best.total_cost <= greedy.total_cost
        # With uniform certain rates the size comparison is the cost
        # comparison; with mixed rates the expected costs still satisfy
        # optimal-within-budget <= greedy whenever greedy is min-size.
        if greedy.total_cost == best.total_cost:
            assert expected_plan_cost(best) <= expected_plan_cost(greedy) + 1e-9

    def test_greedy_matches_optimal_on_certain_instance(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["a", "b", "d"], "r": ["a", "b"]}
        )
        greedy = greedy_shared_plan(instance)
        best = optimal_plan(instance)
        assert best.total_cost == 3
        assert greedy.total_cost == 3
