"""Tests for the paper's two-stage greedy planner."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import PlanConstructionError
from repro.plans.baselines import no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.greedy_planner import GreedyPlannerStats, greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from tests.conftest import query_families


class TestBasics:
    def test_single_query_chain(self):
        instance = SharedAggregationInstance.from_sets({"q": ["a", "b", "c"]})
        plan = greedy_shared_plan(instance)
        plan.validate()
        assert plan.total_cost == 2  # |X_q| - 1

    def test_identical_queries_fully_shared(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("p", ["a", "b", "c"], 0.5),
                AggregateQuery("q", ["c", "b", "a"], 0.5),
            ]
        )
        # Dedup merges them upfront; the plan is a single chain.
        plan = greedy_shared_plan(instance)
        assert plan.total_cost == 2

    def test_disjoint_queries_no_sharing_possible(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b"], "q": ["c", "d"]}
        )
        plan = greedy_shared_plan(instance)
        assert plan.total_cost == 2
        assert plan.extra_cost == 0

    def test_unknown_strategy_rejected(self):
        instance = SharedAggregationInstance.from_sets({"q": ["a", "b"]})
        with pytest.raises(PlanConstructionError):
            greedy_shared_plan(instance, pair_strategy="bogus")

    def test_stats_populated(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["a", "b", "d"]}
        )
        stats = GreedyPlannerStats()
        greedy_shared_plan(instance, stats=stats)
        assert stats.fragment_nodes >= 1
        assert stats.completion_steps + stats.direct_completions >= 1
        assert "fragment_nodes" in repr(stats)


class TestSharingQuality:
    def test_overlapping_pair_shares_common_part(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b", "c"], "q": ["a", "b", "d"]}
        )
        plan = greedy_shared_plan(instance)
        # Optimal: ab, abc, abd = 3 nodes (no-sharing needs 4).
        assert plan.total_cost == 3

    def test_shoe_store_structure(self):
        general = [f"g{i}" for i in range(5)]
        sports = [f"s{i}" for i in range(3)]
        fashion = [f"f{i}" for i in range(2)]
        instance = SharedAggregationInstance.from_sets(
            {
                "hiking boots": general + sports,
                "high-heels": general + fashion,
            }
        )
        plan = greedy_shared_plan(instance)
        baseline = no_sharing_plan(instance)
        # Shared: 4 (general) + 2 (sports) + 1 (fashion) + 2 joins = 9.
        assert plan.total_cost == 9
        assert baseline.total_cost == 13
        # The general-store aggregate exists and feeds both queries.
        shared_node = plan.node_for_varset(frozenset(general))
        assert shared_node is not None
        downstream = plan.downstream_queries()[shared_node]
        assert downstream == {"hiking boots", "high-heels"}

    def test_nested_queries_reuse_inner(self):
        instance = SharedAggregationInstance.from_sets(
            {"inner": ["a", "b"], "outer": ["a", "b", "c", "d"]}
        )
        plan = greedy_shared_plan(instance)
        # inner = ab (1); outer builds on it: cd then ab|cd or chain.
        assert plan.total_cost <= 3

    def test_favors_probable_queries(self):
        """With one hot query and one cold one competing for the shared
        node, cost stays below the no-sharing baseline and the plan stays
        valid for both rate assignments."""
        for hot, cold in [(1.0, 0.05), (0.05, 1.0)]:
            instance = SharedAggregationInstance.from_sets(
                {"hot": ["a", "b", "c"], "cold": ["b", "c", "d"]},
                {"hot": hot, "cold": cold},
            )
            plan = greedy_shared_plan(instance)
            plan.validate()
            assert expected_plan_cost(plan) <= expected_plan_cost(
                no_sharing_plan(instance)
            ) + 1e-9


class TestPropertyBased:
    @settings(
        deadline=None,
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query_families())
    def test_always_produces_valid_plans(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        plan = greedy_shared_plan(instance)
        plan.validate()
        assert plan.total_cost >= instance.base_cost

    @settings(
        deadline=None,
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query_families())
    def test_never_worse_than_no_sharing(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        shared = expected_plan_cost(greedy_shared_plan(instance))
        unshared = expected_plan_cost(no_sharing_plan(instance))
        assert shared <= unshared + 1e-9

    @settings(
        deadline=None,
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(query_families(max_queries=4, max_vars=7))
    def test_cover_strategy_also_valid(self, family):
        sets, rates = family
        instance = SharedAggregationInstance.from_sets(sets, rates)
        if not instance.queries:
            return
        plan = greedy_shared_plan(instance, pair_strategy="cover")
        plan.validate()
        assert expected_plan_cost(plan) <= expected_plan_cost(
            no_sharing_plan(instance)
        ) + 1e-9
