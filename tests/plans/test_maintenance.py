"""Tests for incremental plan maintenance."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import InvalidPlanError, PlanConstructionError
from repro.plans.cost import expected_plan_cost
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import SharedAggregationInstance
from repro.plans.maintenance import PlanMaintainer


@pytest.fixture
def maintainer():
    return PlanMaintainer(
        {
            "boots": {1, 2, 3, 4},
            "heels": {1, 2, 5},
            "sandals": {5, 6},
        },
        {"boots": 0.8, "heels": 0.6, "sandals": 0.3},
        replan_after=10,
    )


def check_answers(maintainer):
    """The maintained plan must answer every live query exactly."""
    interests = maintainer.interests()
    variables = {v for ids in interests.values() for v in ids}
    scores = {v: float((hash(v) * 31) % 101) for v in variables}
    executor = PlanExecutor(maintainer.plan, 2)
    instance = maintainer.plan.instance
    result = executor.run_round(scores)
    for query in instance.queries:
        expected = sorted(
            query.variables, key=lambda v: (-scores[v], v)
        )[:2]
        assert list(result.answers[query.name].advertiser_ids()) == expected


class TestBasics:
    def test_initial_plan_valid(self, maintainer):
        maintainer.plan.validate()
        check_answers(maintainer)

    def test_replan_after_validation(self):
        with pytest.raises(PlanConstructionError):
            PlanMaintainer({"p": {1, 2}}, replan_after=0)

    def test_unknown_phrase_rejected(self, maintainer):
        with pytest.raises(InvalidPlanError):
            maintainer.add_interest("gloves", 1)
        with pytest.raises(InvalidPlanError):
            maintainer.remove_interest("gloves", 1)
        with pytest.raises(InvalidPlanError):
            maintainer.drop_phrase("gloves")


class TestMutations:
    def test_add_interest_repairs(self, maintainer):
        maintainer.add_interest("sandals", 1)
        assert 1 in maintainer.interests()["sandals"]
        maintainer.plan.validate()
        check_answers(maintainer)
        assert maintainer.repairs_since_replan == 1

    def test_add_existing_interest_is_noop(self, maintainer):
        maintainer.add_interest("boots", 1)
        assert maintainer.repairs_since_replan == 0

    def test_remove_interest_repairs(self, maintainer):
        maintainer.remove_interest("boots", 4)
        assert 4 not in maintainer.interests()["boots"]
        check_answers(maintainer)

    def test_remove_absent_interest_is_noop(self, maintainer):
        maintainer.remove_interest("boots", 99)
        assert maintainer.repairs_since_replan == 0

    def test_remove_last_advertiser_rejected(self, maintainer):
        maintainer.remove_interest("sandals", 6)
        with pytest.raises(InvalidPlanError):
            maintainer.remove_interest("sandals", 5)

    def test_add_phrase(self, maintainer):
        maintainer.add_phrase("gloves", {2, 3, 6}, search_rate=0.4)
        check_answers(maintainer)

    def test_add_duplicate_phrase_rejected(self, maintainer):
        with pytest.raises(InvalidPlanError):
            maintainer.add_phrase("boots", {1})

    def test_add_empty_phrase_rejected(self, maintainer):
        with pytest.raises(InvalidPlanError):
            maintainer.add_phrase("gloves", set())

    def test_drop_phrase(self, maintainer):
        maintainer.drop_phrase("sandals")
        assert "sandals" not in maintainer.interests()
        check_answers(maintainer)


class TestDriftPolicy:
    def test_replan_triggers_after_budget(self):
        maintainer = PlanMaintainer(
            {"p": {1, 2, 3}, "q": {2, 3, 4}}, replan_after=3
        )
        maintainer.add_interest("p", 4)
        maintainer.add_interest("q", 1)
        assert maintainer.replans == 0
        maintainer.add_interest("p", 5)
        assert maintainer.replans == 1
        assert maintainer.repairs_since_replan == 0
        check_answers(maintainer)

    def test_replan_restores_cost_quality(self):
        """After heavy drift, a replan should not be worse than the
        drifted plan (and is typically better)."""
        maintainer = PlanMaintainer(
            {
                "p": set(range(8)),
                "q": set(range(4, 12)),
            },
            replan_after=1000,  # never auto-replan during the drift
        )
        rng = random.Random(1)
        for _ in range(12):
            phrase = rng.choice(["p", "q"])
            advertiser = rng.randrange(16)
            if advertiser in maintainer.interests()[phrase]:
                if len(maintainer.interests()[phrase]) > 2:
                    maintainer.remove_interest(phrase, advertiser)
            else:
                maintainer.add_interest(phrase, advertiser)
        drifted_cost = maintainer.expected_cost()
        fresh = greedy_shared_plan(
            SharedAggregationInstance.from_sets(
                {p: list(ids) for p, ids in maintainer.interests().items()}
            )
        )
        assert expected_plan_cost(fresh) <= drifted_cost + 1e-9
        check_answers(maintainer)


class TestPropertyBased:
    @settings(
        deadline=None,
        max_examples=15,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=25), st.randoms(use_true_random=False))
    def test_random_drift_stays_exact(self, ops, rnd):
        maintainer = PlanMaintainer(
            {"p": {0, 1, 2}, "q": {1, 2, 3}, "r": {0, 3, 4}},
            replan_after=5,
        )
        phrases = ["p", "q", "r"]
        for op in ops:
            phrase = phrases[op % 3]
            advertiser = (op * 7) % 9
            interests = maintainer.interests()[phrase]
            if advertiser in interests:
                if len(interests) > 2:
                    maintainer.remove_interest(phrase, advertiser)
            else:
                maintainer.add_interest(phrase, advertiser)
            maintainer.plan.validate()
        check_answers(maintainer)
