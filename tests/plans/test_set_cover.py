"""Tests for greedy and exact set cover."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanConstructionError
from repro.plans.set_cover import (
    exact_min_set_cover,
    greedy_set_cover,
    is_exact_cover,
)


def fs(*items):
    return frozenset(items)


class TestIsExactCover:
    def test_valid_cover(self):
        assert is_exact_cover(fs(1, 2, 3), [fs(1, 2), fs(3)])

    def test_overlapping_cover_allowed(self):
        assert is_exact_cover(fs(1, 2, 3), [fs(1, 2), fs(2, 3)])

    def test_superset_rejected(self):
        assert not is_exact_cover(fs(1, 2), [fs(1, 2, 3)])

    def test_partial_rejected(self):
        assert not is_exact_cover(fs(1, 2, 3), [fs(1, 2)])


class TestGreedySetCover:
    def test_trivial(self):
        assert greedy_set_cover(fs(1), [fs(1)]) == [fs(1)]

    def test_prefers_bigger_sets(self):
        cover = greedy_set_cover(
            fs(1, 2, 3, 4), [fs(1), fs(2), fs(3), fs(4), fs(1, 2, 3)]
        )
        assert cover[0] == fs(1, 2, 3)
        assert len(cover) == 2

    def test_ignores_sets_outside_target(self):
        cover = greedy_set_cover(fs(1, 2), [fs(1, 2, 3), fs(1), fs(2)])
        assert fs(1, 2, 3) not in cover
        assert is_exact_cover(fs(1, 2), cover)

    def test_uncoverable_raises(self):
        with pytest.raises(PlanConstructionError):
            greedy_set_cover(fs(1, 2), [fs(1)])

    def test_greedy_worst_case(self):
        """The classic greedy trap: pairs vs. a big set chain."""
        target = fs(*range(6))
        candidates = [
            fs(0, 1),
            fs(2, 3),
            fs(4, 5),
            fs(0, 2, 4),
            fs(1, 3, 5),
        ]
        greedy = greedy_set_cover(target, candidates)
        exact = exact_min_set_cover(target, candidates)
        assert len(exact) == 2
        assert len(greedy) >= len(exact)

    def test_deterministic_tie_breaking(self):
        cover1 = greedy_set_cover(fs("a", "b"), [fs("a"), fs("b")])
        cover2 = greedy_set_cover(fs("a", "b"), [fs("b"), fs("a")])
        assert cover1 == cover2


class TestExactMinSetCover:
    def test_finds_minimum(self):
        target = fs(*range(6))
        candidates = [
            fs(0, 1),
            fs(2, 3),
            fs(4, 5),
            fs(0, 2, 4),
            fs(1, 3, 5),
        ]
        exact = exact_min_set_cover(target, candidates)
        assert len(exact) == 2
        assert is_exact_cover(target, exact)

    def test_uncoverable_raises(self):
        with pytest.raises(PlanConstructionError):
            exact_min_set_cover(fs(1, 2), [fs(1)])

    def test_single_set_cover(self):
        assert exact_min_set_cover(fs(1, 2), [fs(1), fs(1, 2)]) == [fs(1, 2)]

    @settings(deadline=None, max_examples=40)
    @given(
        st.integers(min_value=1, max_value=6).flatmap(
            lambda n: st.tuples(
                st.just(frozenset(range(n))),
                st.lists(
                    st.sets(
                        st.integers(min_value=0, max_value=n - 1), min_size=1
                    ).map(frozenset),
                    min_size=1,
                    max_size=8,
                ),
            )
        )
    )
    def test_exact_at_most_greedy(self, data):
        target, candidates = data
        coverable = set().union(*(c & target for c in candidates))
        if coverable != set(target):
            with pytest.raises(PlanConstructionError):
                exact_min_set_cover(target, candidates)
            return
        greedy = greedy_set_cover(target, candidates)
        exact = exact_min_set_cover(target, candidates)
        assert is_exact_cover(target, greedy)
        assert is_exact_cover(target, exact)
        assert len(exact) <= len(greedy)
