"""E4 support: executable Theorem 2 / Theorem 3 reductions.

The key decoded identity on small instances: the minimum plan's extra
cost is ``|minimum set cover| - 1`` for the closed (Theorem 3)
construction, so optimal planning solves set cover.
"""

from __future__ import annotations

import pytest

from repro.errors import PlanConstructionError
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.optimal import optimal_plan
from repro.plans.reductions import (
    decode_cover_from_plan,
    set_cover_to_instance,
    set_cover_to_instance_closed,
    universal_query_name,
)
from repro.plans.set_cover import exact_min_set_cover, is_exact_cover


UNIVERSE = frozenset(range(6))
COLLECTION = [
    frozenset({0, 1}),
    frozenset({2, 3}),
    frozenset({4, 5}),
    frozenset({0, 2, 4}),
    frozenset({1, 3, 5}),
]
# Minimum cover: {0,2,4} + {1,3,5} = 2 sets.


class TestConstruction:
    def test_instance_has_universal_plus_sets(self):
        instance = set_cover_to_instance(UNIVERSE, COLLECTION)
        names = {q.name for q in instance.queries}
        assert universal_query_name() in names
        assert len(names) == len(COLLECTION) + 1

    def test_rejects_non_subset(self):
        with pytest.raises(PlanConstructionError):
            set_cover_to_instance({1, 2}, [{1, 3}])

    def test_rejects_non_covering(self):
        with pytest.raises(PlanConstructionError):
            set_cover_to_instance({1, 2, 3}, [{1, 2}])

    def test_closed_construction_adds_suffixes(self):
        instance = set_cover_to_instance_closed(UNIVERSE, COLLECTION)
        varsets = {q.variables for q in instance.queries}
        # The suffix {2, 4} of the sorted set {0, 2, 4} must be a query.
        assert frozenset({2, 4}) in varsets
        assert UNIVERSE in varsets

    def test_closed_construction_degenerate_universe(self):
        instance = set_cover_to_instance_closed({1, 2}, [{1, 2}])
        varsets = {q.variables for q in instance.queries}
        assert frozenset({1, 2}) in varsets


class TestDecoding:
    def test_optimal_extra_cost_decodes_min_cover(self):
        """Theorem 3 in action: aggregating a cover of size ``c`` takes
        ``c - 1`` operator nodes, one of which is the universal query
        node itself (base cost), so the optimal extra cost is
        ``c - 2``."""
        universe = frozenset(range(4))
        collection = [
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({1, 2}),
            frozenset({0, 3}),
        ]
        instance = set_cover_to_instance_closed(universe, collection)
        plan = optimal_plan(instance)
        min_cover = exact_min_set_cover(universe, collection)
        assert len(min_cover) == 2
        assert plan.extra_cost == len(min_cover) - 2 == 0

    def test_optimal_extra_cost_three_set_cover(self):
        """A universe needing a 3-set cover forces exactly one extra node."""
        universe = frozenset(range(6))
        collection = [
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4, 5}),
            frozenset({0, 2}),
            frozenset({1, 3}),
        ]
        instance = set_cover_to_instance_closed(universe, collection)
        plan = optimal_plan(instance, extra_nodes=0)
        min_cover = exact_min_set_cover(universe, collection)
        assert len(min_cover) == 3
        assert plan.extra_cost == len(min_cover) - 2 == 1

    def test_decoded_cover_is_valid(self):
        universe = frozenset(range(4))
        collection = [
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({1, 2}),
        ]
        instance = set_cover_to_instance_closed(universe, collection)
        plan = optimal_plan(instance)
        cover = decode_cover_from_plan(plan, universe, collection)
        assert is_exact_cover(universe, cover)
        assert len(cover) == len(exact_min_set_cover(universe, collection))

    def test_greedy_planner_cover_within_log_factor(self):
        """The planner completes the universal query via greedy set
        cover, so the decoded cover obeys the greedy guarantee."""
        instance = set_cover_to_instance_closed(UNIVERSE, COLLECTION)
        plan = greedy_shared_plan(instance)
        cover = decode_cover_from_plan(plan, UNIVERSE, COLLECTION)
        assert is_exact_cover(UNIVERSE, cover)
        optimal_size = len(exact_min_set_cover(UNIVERSE, COLLECTION))
        import math

        bound = optimal_size * (1 + math.log(len(UNIVERSE)))
        assert len(cover) <= bound

    def test_decode_requires_universal_query(self):
        from repro.plans.instance import SharedAggregationInstance

        instance = SharedAggregationInstance.from_sets({"q": ["a", "b"]})
        plan = greedy_shared_plan(instance)
        with pytest.raises(PlanConstructionError):
            decode_cover_from_plan(plan, {"a", "b", "c"}, [{"a", "b"}])
