"""Tests for the syntactic (non-associative) optimal planner."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.axioms import Axiom, AxiomProfile
from repro.algebra.expressions import Op, Var
from repro.errors import InvalidPlanError
from repro.plans.syntactic import SyntacticPlan, count_distinct_subterms

X, Y, Z = Var("x"), Var("y"), Var("z")

BARE = AxiomProfile()
A3 = AxiomProfile({Axiom.A3})
A4 = AxiomProfile({Axiom.A4})
A3A4 = AxiomProfile({Axiom.A3, Axiom.A4})
ASSOC = AxiomProfile({Axiom.A1})


class TestConstruction:
    def test_rejects_associative_profiles(self):
        with pytest.raises(InvalidPlanError):
            SyntacticPlan({"q": Op(X, Y)}, ASSOC)

    def test_rejects_empty(self):
        with pytest.raises(InvalidPlanError):
            SyntacticPlan({}, BARE)

    def test_single_op(self):
        plan = SyntacticPlan({"q": Op(X, Y)}, BARE)
        assert plan.optimal_cost == 1
        assert plan.num_leaves == 2

    def test_identical_queries_share_fully(self):
        plan = SyntacticPlan({"p": Op(X, Y), "q": Op(X, Y)}, BARE)
        assert plan.optimal_cost == 1
        assert plan.root_of("p") == plan.root_of("q")

    def test_subexpression_shared(self):
        inner = Op(X, Y)
        plan = SyntacticPlan(
            {"small": inner, "big": Op(inner, Z)}, BARE
        )
        assert plan.optimal_cost == 2
        assert plan.root_of("small") in plan.shared_nodes()

    def test_bare_profile_distinguishes_operand_order(self):
        plan = SyntacticPlan({"p": Op(X, Y), "q": Op(Y, X)}, BARE)
        assert plan.optimal_cost == 2

    def test_commutative_profile_merges_swapped_operands(self):
        plan = SyntacticPlan({"p": Op(X, Y), "q": Op(Y, X)}, A4)
        assert plan.optimal_cost == 1
        assert plan.root_of("p") == plan.root_of("q")

    def test_idempotent_profile_collapses_squares(self):
        plan = SyntacticPlan({"p": Op(X, X)}, A3)
        assert plan.optimal_cost == 0  # x ⊕ x is just x
        plan_bare = SyntacticPlan({"p": Op(X, X)}, BARE)
        assert plan_bare.optimal_cost == 1

    def test_nested_idempotent_collapse(self):
        expr = Op(Op(X, X), Op(X, X))
        assert SyntacticPlan({"p": expr}, A3).optimal_cost == 0
        assert SyntacticPlan({"p": expr}, BARE).optimal_cost == 2

    def test_unknown_query_raises(self):
        plan = SyntacticPlan({"q": Op(X, Y)}, BARE)
        with pytest.raises(InvalidPlanError):
            plan.root_of("nope")


class TestEvaluation:
    def test_subtraction_evaluates_correctly(self):
        """Subtraction is non-associative, non-commutative: the perfect
        client for the syntactic planner."""
        queries = {
            "p": Op(Op(X, Y), Z),
            "q": Op(X, Op(Y, Z)),
            "r": Op(X, Y),
        }
        plan = SyntacticPlan(queries, BARE)
        values = plan.evaluate(
            lambda a, b: a - b, {"x": 10.0, "y": 3.0, "z": 2.0}
        )
        assert values == {"p": 5.0, "q": 9.0, "r": 7.0}
        # Distinct subterms: (x-y) [shared by p and r], ((x-y)-z),
        # (y-z), (x-(y-z)) -- four operator nodes instead of five.
        assert plan.optimal_cost == 4
        assert plan.root_of("r") in plan.shared_nodes()

    def test_missing_binding_raises(self):
        plan = SyntacticPlan({"q": Op(X, Y)}, BARE)
        with pytest.raises(InvalidPlanError):
            plan.evaluate(lambda a, b: a, {"x": 1.0})

    def test_commutative_sharing_stays_correct(self):
        plan = SyntacticPlan({"p": Op(X, Y), "q": Op(Y, X)}, A4)
        values = plan.evaluate(lambda a, b: a * b, {"x": 3.0, "y": 4.0})
        assert values["p"] == values["q"] == 12.0


@st.composite
def small_exprs(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return Var(draw(st.sampled_from(["x", "y", "z"])))
    return Op(draw(small_exprs(depth=depth - 1)), draw(small_exprs(depth=depth - 1)))


class TestOptimality:
    @settings(deadline=None, max_examples=60)
    @given(st.lists(small_exprs(), min_size=1, max_size=4))
    def test_cost_equals_distinct_subterm_count(self, exprs):
        queries = {f"q{i}": e for i, e in enumerate(exprs)}
        for profile in (BARE, A3, A4, A3A4):
            plan = SyntacticPlan(queries, profile)
            assert plan.optimal_cost == count_distinct_subterms(
                queries, profile
            )

    @settings(deadline=None, max_examples=60)
    @given(st.lists(small_exprs(), min_size=1, max_size=3))
    def test_stronger_profiles_never_cost_more(self, exprs):
        queries = {f"q{i}": e for i, e in enumerate(exprs)}
        bare = SyntacticPlan(queries, BARE).optimal_cost
        commutative = SyntacticPlan(queries, A4).optimal_cost
        idempotent = SyntacticPlan(queries, A3).optimal_cost
        both = SyntacticPlan(queries, A3A4).optimal_cost
        assert commutative <= bare
        assert idempotent <= bare
        assert both <= min(commutative, idempotent)

    @settings(deadline=None, max_examples=40)
    @given(st.lists(small_exprs(depth=2), min_size=1, max_size=3))
    def test_evaluation_matches_direct_recursion(self, exprs):
        queries = {f"q{i}": e for i, e in enumerate(exprs)}
        assignment = {"x": 2.0, "y": 5.0, "z": 11.0}

        def direct(expr):
            if isinstance(expr, Var):
                return assignment[expr.name]
            return direct(expr.left) - direct(expr.right)

        plan = SyntacticPlan(queries, BARE)
        values = plan.evaluate(lambda a, b: a - b, assignment)
        for name, expr in queries.items():
            assert values[name] == pytest.approx(direct(expr))
