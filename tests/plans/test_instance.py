"""Tests for aggregate queries and shared-aggregation instances."""

from __future__ import annotations

import pytest

from repro.errors import InvalidPlanError
from repro.plans.instance import AggregateQuery, SharedAggregationInstance


class TestAggregateQuery:
    def test_basic(self):
        query = AggregateQuery("boots", ["a", "b"], 0.4)
        assert query.variables == frozenset({"a", "b"})
        assert query.search_rate == 0.4
        assert len(query) == 2

    def test_requires_variables(self):
        with pytest.raises(InvalidPlanError):
            AggregateQuery("q", [])

    @pytest.mark.parametrize("rate", [-0.2, 1.5])
    def test_rate_range(self, rate):
        with pytest.raises(InvalidPlanError):
            AggregateQuery("q", ["a"], rate)

    def test_duplicate_variables_collapse(self):
        query = AggregateQuery("q", ["a", "a", "b"])
        assert query.variables == frozenset({"a", "b"})


class TestSharedAggregationInstance:
    def test_basic(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("q1", ["a", "b"], 0.5),
                AggregateQuery("q2", ["b", "c"], 0.7),
            ]
        )
        assert len(instance) == 2
        assert instance.variables == frozenset({"a", "b", "c"})
        assert instance.base_cost == 2

    def test_rejects_duplicate_names(self):
        with pytest.raises(InvalidPlanError):
            SharedAggregationInstance(
                [AggregateQuery("q", ["a", "b"]), AggregateQuery("q", ["c", "d"])]
            )

    def test_equivalent_queries_merge_with_combined_rate(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("q1", ["a", "b"], 0.5),
                AggregateQuery("q2", ["b", "a"], 0.5),
            ]
        )
        assert len(instance) == 1
        (query,) = instance.queries
        # 1 - (1-0.5)(1-0.5) = 0.75: independent occurrence events.
        assert query.search_rate == pytest.approx(0.75)

    def test_single_variable_queries_are_trivial(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("big", ["a", "b"]),
                AggregateQuery("small", ["c"]),
            ]
        )
        assert [q.name for q in instance.queries] == ["big"]
        assert [q.name for q in instance.trivial_queries] == ["small"]
        assert "c" in instance.variables

    def test_needs_at_least_one_query(self):
        with pytest.raises(InvalidPlanError):
            SharedAggregationInstance([])

    def test_query_by_name(self):
        instance = SharedAggregationInstance(
            [AggregateQuery("q1", ["a", "b"]), AggregateQuery("tiny", ["c"])]
        )
        assert instance.query_by_name("q1").variables == frozenset({"a", "b"})
        assert instance.query_by_name("tiny").variables == frozenset({"c"})
        with pytest.raises(InvalidPlanError):
            instance.query_by_name("nope")

    def test_membership_signature(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("p", ["a", "b"]),
                AggregateQuery("q", ["b", "c"]),
            ]
        )
        # Queries are name-sorted: p then q.
        assert instance.membership_signature("a") == (True, False)
        assert instance.membership_signature("b") == (True, True)
        assert instance.membership_signature("c") == (False, True)

    def test_search_rates_mapping(self):
        instance = SharedAggregationInstance(
            [
                AggregateQuery("p", ["a", "b"], 0.3),
                AggregateQuery("t", ["c"], 0.9),
            ]
        )
        rates = instance.search_rates()
        assert rates == {"p": 0.3, "t": 0.9}

    def test_from_sets_uniform_rate(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b"], "q": ["b", "c"]}, 0.25
        )
        assert all(q.search_rate == 0.25 for q in instance.queries)

    def test_from_sets_mapping_rates(self):
        instance = SharedAggregationInstance.from_sets(
            {"p": ["a", "b"], "q": ["b", "c"]}, {"p": 0.1}
        )
        rates = instance.search_rates()
        assert rates["p"] == 0.1
        assert rates["q"] == 1.0

    def test_repr(self):
        instance = SharedAggregationInstance.from_sets({"p": ["a", "b"]})
        assert "1 queries" in repr(instance)
