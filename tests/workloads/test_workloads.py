"""Tests for workload generators and distributions."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import (
    lognormal_cents,
    sample_subset,
    zipf_search_rates,
    zipf_weights,
)
from repro.workloads.fig4 import fig4_instance
from repro.workloads.generator import MarketConfig, generate_market
from repro.workloads.scenarios import shoe_store_instance


class TestDistributions:
    def test_zipf_weights_normalized(self):
        weights = zipf_weights(10, 1.0)
        assert sum(weights) == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zipf_weights_validation(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)
        with pytest.raises(WorkloadError):
            zipf_weights(5, -1.0)

    def test_zipf_search_rates_top_and_decay(self):
        rates = zipf_search_rates(5, 1.0, 0.8)
        assert rates[0] == pytest.approx(0.8)
        assert rates[1] == pytest.approx(0.4)
        assert all(0.0 < r <= 1.0 for r in rates)

    def test_zipf_search_rates_validation(self):
        with pytest.raises(WorkloadError):
            zipf_search_rates(5, 1.0, 0.0)

    def test_lognormal_positive(self):
        rng = random.Random(0)
        values = [lognormal_cents(rng, 100) for _ in range(200)]
        assert all(v >= 1 for v in values)
        with pytest.raises(WorkloadError):
            lognormal_cents(rng, 0)
        with pytest.raises(WorkloadError):
            lognormal_cents(rng, 100, sigma=-1.0)

    def test_sample_subset(self):
        rng = random.Random(1)
        assert sample_subset(rng, [1, 2, 3], 1.0) == [1, 2, 3]
        assert sample_subset(rng, [1, 2, 3], 0.0) == []
        with pytest.raises(WorkloadError):
            sample_subset(rng, [1], 1.5)


class TestMarketGenerator:
    def test_deterministic_by_seed(self):
        a = generate_market(MarketConfig(seed=4))
        b = generate_market(MarketConfig(seed=4))
        assert [x.advertiser_id for x in a.advertisers] == [
            x.advertiser_id for x in b.advertisers
        ]
        assert a.search_rates == b.search_rates
        assert a.phrase_advertisers == b.phrase_advertisers

    def test_population_size(self):
        config = MarketConfig(
            num_categories=3,
            specialists_per_category=10,
            generalists=5,
            seed=1,
        )
        market = generate_market(config)
        assert len(market.advertisers) == 3 * 10 + 5

    def test_every_advertiser_has_a_phrase(self):
        market = generate_market(MarketConfig(seed=2))
        assert all(a.phrases for a in market.advertisers)

    def test_generalists_span_categories(self):
        config = MarketConfig(
            num_categories=4,
            specialists_per_category=0,
            generalists=20,
            generalist_categories=2,
            phrase_interest=1.0,
            seed=3,
        )
        market = generate_market(config)
        for advertiser in market.advertisers:
            categories = {p.split("p")[0] for p in advertiser.phrases}
            assert len(categories) == 2

    def test_specialists_stay_in_category(self):
        config = MarketConfig(
            num_categories=3,
            specialists_per_category=5,
            generalists=0,
            seed=7,
        )
        market = generate_market(config)
        for advertiser in market.advertisers:
            categories = {p.split("p")[0] for p in advertiser.phrases}
            assert len(categories) == 1

    def test_budgets_follow_config(self):
        unbudgeted = generate_market(MarketConfig(seed=1))
        assert all(
            a.daily_budget == float("inf") for a in unbudgeted.advertisers
        )
        budgeted = generate_market(
            MarketConfig(median_budget_cents=5_000, seed=1)
        )
        assert all(
            a.daily_budget != float("inf") for a in budgeted.advertisers
        )

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            MarketConfig(num_categories=0)
        with pytest.raises(WorkloadError):
            MarketConfig(generalist_categories=9, num_categories=2)
        with pytest.raises(WorkloadError):
            MarketConfig(phrase_interest=0.0)


class TestFig4Instance:
    def test_protocol_counts(self):
        instance = fig4_instance(0.5, seed=0)
        assert len(instance.queries) == 10
        assert instance.variables <= frozenset(range(20))

    def test_queries_distinct(self):
        instance = fig4_instance(0.5, seed=1)
        varsets = {q.variables for q in instance.queries}
        assert len(varsets) == 10

    def test_all_queries_get_the_probability(self):
        instance = fig4_instance(0.3, seed=2)
        assert all(q.search_rate == 0.3 for q in instance.queries)

    def test_deterministic_by_seed(self):
        a = fig4_instance(0.7, seed=5)
        b = fig4_instance(0.7, seed=5)
        assert [q.variables for q in a.queries] == [
            q.variables for q in b.queries
        ]

    def test_impossible_parameters_raise(self):
        with pytest.raises(RuntimeError):
            fig4_instance(
                0.5, num_queries=10, num_advertisers=2,
                membership_probability=1.0,
            )


class TestShoeScenario:
    def test_default_counts(self):
        instance, groups = shoe_store_instance()
        assert len(groups["general"]) == 200
        assert len(groups["sports"]) == 40
        assert len(groups["fashion"]) == 30
        boots = instance.query_by_name("hiking boots")
        heels = instance.query_by_name("high-heels")
        assert len(boots.variables) == 240
        assert len(heels.variables) == 230

    def test_scaled_counts(self):
        instance, groups = shoe_store_instance(10, 4, 2)
        assert len(instance.query_by_name("hiking boots").variables) == 14
