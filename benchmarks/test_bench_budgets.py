"""E19 -- Section IV at scale: the gaming attack's revenue loss and the
incremental throttle layer's work savings.

Two claims, one workload.  The workload is
:func:`repro.budgets.gaming.gaming_market_at_scale`: thousands of
near-exhausted attackers (budgets worth ~1.5-2 clicks) crowding a few
always-occurring phrases, plus a deep-budget honest field they outrank.

*Revenue loss*: under a naive policy (ignore outstanding ads) the
attackers keep winning slots whose eventual clicks they cannot pay for;
the forgiven fraction of delivered click value is the provider's loss.
Section IV throttling drives it to ~zero on the identical click
fortunes -- the paper's Table-style result, recorded per policy.

*Throttle work*: with every phrase occurring every round, multiplicities
never move and the only thing invalidating a throttled bid is a book
movement -- but only ~k ads per phrase are displayed per round, so the
overwhelming majority of the 2000+ advertisers are clean each round.
The change-feed-driven :class:`repro.budgets.incremental
.IncrementalThrottleCache` therefore reuses almost every b̂, and
bound-driven selection resolves almost nobody exactly.  The gate is
counter arithmetic (exact DP/enumeration invocations plus expand-out
steps, ``throttle.exact_fallbacks + throttle.expansions``), identical
across machines: cached throttle work must stay at or under 60% of the
exact-recompute baseline -- measured well below 10%.

Results land in ``BENCH_budgets.json`` at the repo root.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.budgets.gaming import forgiven_fraction, gaming_market_at_scale
from repro.engine import SharedAuctionEngine
from repro.instrument import MetricsCollector, names
from repro.metrics.tables import ExperimentTable

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_budgets.json"
ATTACKERS = 2000
HONEST = 200
ROUNDS = 24
MARKET_SEED = 0
ENGINE_SEED = 7
CLICK_DELAY_ROUNDS = 3.0
SLOT_FACTORS = [1.0, 0.6, 0.3]
CACHED_WORK_MAX_RATIO = 0.60  # the CI gate; measured ~0.05
MIN_NAIVE_LOSS = 0.05  # the attack must visibly bite before mitigation

MARKET = gaming_market_at_scale(
    num_attackers=ATTACKERS, num_honest=HONEST, seed=MARKET_SEED
)


def make_engine(collector=None, **engine_kwargs):
    return SharedAuctionEngine(
        MARKET.advertisers,
        slot_factors=SLOT_FACTORS,
        search_rates=MARKET.search_rates,
        mode="unshared",
        mean_click_delay_rounds=CLICK_DELAY_ROUNDS,
        seed=ENGINE_SEED,
        collector=collector,
        **engine_kwargs,
    )


def throttle_work(counters):
    """Exact DP/enumeration invocations plus expand-out steps."""
    return counters.get(names.THROTTLE_EXACT_FALLBACKS, 0) + counters.get(
        names.THROTTLE_EXPANSIONS, 0
    )


THROTTLE_CONFIGS = [
    ("exact recompute", {}),
    ("exact +throttle-cache", {"throttle_cache": True, "cache_verify": False}),
    ("bounded", {"throttle_mode": "bounded"}),
    (
        "bounded +throttle-cache",
        {
            "throttle_mode": "bounded",
            "throttle_cache": True,
            "cache_verify": False,
        },
    ),
]


@pytest.mark.experiment("E19")
def test_gaming_at_scale_revenue_loss_and_throttle_work(benchmark):
    record = {
        "attackers": ATTACKERS,
        "honest": HONEST,
        "rounds": ROUNDS,
        "market_seed": MARKET_SEED,
        "engine_seed": ENGINE_SEED,
        "policies": {},
        "throttle_configs": {},
    }

    # --- Revenue loss: naive vs throttled on identical click fortunes.
    loss_table = ExperimentTable(
        f"Gaming at scale: {ATTACKERS} attackers, {HONEST} honest, "
        f"{ROUNDS} rounds",
        ["policy", "revenue ($)", "forgiven ($)", "revenue loss"],
    )
    losses = {}
    for label, throttle in (("naive", False), ("throttled", True)):
        report = make_engine(
            throttle=throttle, throttle_cache=throttle
        ).run(ROUNDS)
        loss = forgiven_fraction(
            report.revenue_cents, report.forgiven_cents
        )
        losses[label] = loss
        loss_table.add(
            label,
            report.revenue_cents / 100,
            report.forgiven_cents / 100,
            round(loss, 4),
        )
        record["policies"][label] = {
            "revenue_cents": report.revenue_cents,
            "forgiven_cents": report.forgiven_cents,
            "revenue_loss": round(loss, 4),
        }
    loss_table.show()
    assert losses["naive"] >= MIN_NAIVE_LOSS, (
        "the attack never bit; the workload is not probing anything"
    )
    assert losses["throttled"] < losses["naive"] / 5.0, (
        "throttling should remove most of the naive revenue loss"
    )

    # --- Throttle work: all four configs must agree bit-for-bit on the
    # auction outcome; only the work counters may differ.
    work_table = ExperimentTable(
        "Throttle work on the gaming workload (lower is better)",
        ["config", "exact fallbacks", "expansions", "work", "reused"],
    )
    work_by_label = {}
    outcomes = {}
    for label, config in THROTTLE_CONFIGS:
        collector = MetricsCollector()
        report = make_engine(collector=collector, **config).run(ROUNDS)
        counters = dict(collector.counters)
        work_by_label[label] = counters
        outcomes[label] = (
            [r.allocations for r in report.history],
            report.revenue_cents,
            report.forgiven_cents,
        )
        work_table.add(
            label,
            counters.get(names.THROTTLE_EXACT_FALLBACKS, 0),
            counters.get(names.THROTTLE_EXPANSIONS, 0),
            throttle_work(counters),
            counters.get(names.THROTTLE_PROBLEMS_REUSED, 0),
        )
        record["throttle_configs"][label] = {
            "exact_fallbacks": counters.get(
                names.THROTTLE_EXACT_FALLBACKS, 0
            ),
            "expansions": counters.get(names.THROTTLE_EXPANSIONS, 0),
            "work": throttle_work(counters),
            "problems_reused": counters.get(
                names.THROTTLE_PROBLEMS_REUSED, 0
            ),
            "revenue_cents": report.revenue_cents,
        }
    work_table.show()
    baseline_outcome = outcomes["exact recompute"]
    for label, _ in THROTTLE_CONFIGS[1:]:
        assert outcomes[label] == baseline_outcome, (
            f"{label} changed the auction outcome"
        )

    # --- The tentpole gate: cached throttle work <= 60% of the
    # exact-recompute baseline on the gaming workload.
    baseline = throttle_work(work_by_label["exact recompute"])
    assert baseline > 0, "baseline did no throttle work at all"
    gates = {"baseline_work": baseline, "max_ratio": CACHED_WORK_MAX_RATIO}
    for label in ("exact +throttle-cache", "bounded +throttle-cache"):
        cached = throttle_work(work_by_label[label])
        ratio = cached / baseline
        gates[label.replace(" ", "_")] = {
            "work": cached,
            "ratio": round(ratio, 4),
        }
        assert ratio <= CACHED_WORK_MAX_RATIO, (
            f"{label} saved too little throttle work: "
            f"{cached} vs baseline {baseline} (ratio {ratio:.3f})"
        )
    assert (
        work_by_label["exact +throttle-cache"].get(
            names.THROTTLE_PROBLEMS_REUSED, 0
        )
        > 0
    ), "the throttle cache never reused a problem"
    record["gates"] = gates

    # --- Determinism: an identical cached run records identical
    # counters (the same contract the serving bench pins).
    collector = MetricsCollector()
    make_engine(
        collector=collector, throttle_cache=True, cache_verify=False
    ).run(ROUNDS)
    assert dict(collector.counters) == work_by_label[
        "exact +throttle-cache"
    ], "cached gaming run is not deterministic"

    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    # --- Timed kernel: one steady-state cached round on the gaming
    # market, end to end (scoring through the cache + allocation).
    engine = make_engine(throttle_cache=True, cache_verify=False)
    engine.run(ROUNDS)  # warm books and cache past the cold start

    def cached_round():
        engine.run_round()

    benchmark(cached_round)
