"""E10 -- end-to-end shared vs unshared winner determination.

The paper's headline motivation: batching simultaneous auctions and
sharing their top-k work cuts the per-round computation while leaving
every outcome identical.  We run the full engine (throttling, budgets,
delayed clicks) on a generated market in both modes and compare work
counters and timings.
"""

from __future__ import annotations

import pytest

from repro.engine import SharedAuctionEngine
from repro.instrument import MetricsCollector, names
from repro.metrics.tables import WORK_COLUMN_NAMES, ExperimentTable, work_columns
from repro.workloads.generator import MarketConfig, generate_market

ROUNDS = 30


def build_engine(market, mode: str, collector=None) -> SharedAuctionEngine:
    return SharedAuctionEngine(
        market.advertisers,
        slot_factors=[0.3, 0.2, 0.1],
        search_rates=market.search_rates,
        mode=mode,
        throttle=True,
        seed=13,
        collector=collector,
    )


@pytest.mark.experiment("EndToEnd")
def test_shared_vs_unshared_work(benchmark):
    table = ExperimentTable(
        f"End-to-end engine, {ROUNDS} rounds per configuration",
        [
            "generalists",
            "mode",
            *WORK_COLUMN_NAMES,
            "revenue ($)",
            "identical outcomes",
        ],
    )
    for generalists in (5, 20, 40):
        market = generate_market(
            MarketConfig(
                num_categories=3,
                phrases_per_category=4,
                specialists_per_category=15,
                generalists=generalists,
                generalist_categories=2,
                seed=9,
            )
        )
        reports = {}
        work = {}
        for mode in ("shared", "unshared"):
            # The work table comes from measured counters; the timed
            # benchmark below runs a separate collector-free engine.
            collector = MetricsCollector()
            engine = build_engine(market, mode, collector)
            reports[mode] = engine.run(ROUNDS)
            work[mode] = work_columns(collector)
        identical = (
            reports["shared"].revenue_cents == reports["unshared"].revenue_cents
            and reports["shared"].displays == reports["unshared"].displays
        )
        for mode in ("shared", "unshared"):
            report = reports[mode]
            table.add(
                generalists,
                mode,
                *work[mode],
                report.revenue_cents / 100,
                identical,
            )
        assert identical
        assert reports["shared"].scans <= reports["unshared"].scans
        # The counters must tell the same story as the report fields.
        assert work["shared"][WORK_COLUMN_NAMES.index("leaf scans")] == (
            reports["shared"].scans
        )
        assert work["unshared"][WORK_COLUMN_NAMES.index("scan entries")] == (
            reports["unshared"].scans
        )
    table.show()

    market = generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=4,
            specialists_per_category=15,
            generalists=40,
            generalist_categories=2,
            seed=9,
        )
    )
    shared_engine = build_engine(market, "shared")
    benchmark(lambda: shared_engine.run_round())


@pytest.mark.experiment("EndToEnd")
def test_unshared_round_baseline(benchmark):
    market = generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=4,
            specialists_per_category=15,
            generalists=40,
            generalist_categories=2,
            seed=9,
        )
    )
    engine = build_engine(market, "unshared")
    benchmark(lambda: engine.run_round())
