"""E2 -- the Section II-B shoe-store example at paper scale.

200 general + 40 sports + 30 fashion stores; the paper's accounting:
470 advertisers scanned unshared vs 270 shared (~40% fewer).  The
benchmark times a full shared round at this scale.
"""

from __future__ import annotations

import random

import pytest

from repro.metrics.tables import ExperimentTable
from repro.plans.baselines import no_sharing_plan
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.workloads.scenarios import shoe_store_instance


@pytest.mark.experiment("ShoeStores")
def test_shoe_store_scan_counts(benchmark):
    instance, _groups = shoe_store_instance()
    shared_plan = greedy_shared_plan(instance, pair_strategy="cover")
    unshared_plan = no_sharing_plan(instance)
    rng = random.Random(3)
    scores = {v: rng.uniform(0.1, 5.0) for v in instance.variables}

    shared_exec = PlanExecutor(shared_plan, 5)
    unshared_exec = PlanExecutor(unshared_plan, 5)
    shared_run = shared_exec.run_round(scores)
    unshared_run = unshared_exec.run_round(scores)

    table = ExperimentTable(
        "Section II-B shoe stores (200 general / 40 sports / 30 fashion)",
        ["plan", "advertisers scanned", "merges", "identical answers"],
    )
    identical = shared_run.answers == unshared_run.answers
    table.add(
        "unshared",
        unshared_run.advertisers_scanned,
        unshared_run.merges_performed,
        identical,
    )
    table.add(
        "shared",
        shared_run.advertisers_scanned,
        shared_run.merges_performed,
        identical,
    )
    table.show()

    assert unshared_run.advertisers_scanned == 470
    assert shared_run.advertisers_scanned == 270
    assert identical

    benchmark(lambda: shared_exec.run_round(scores))
