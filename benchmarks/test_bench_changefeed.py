"""E13 -- the unified invalidation bus: overhead and autotune policy.

The bus must be cheap enough to be invisible: publishing a typed event
and draining it from a subscription is a few dict/list operations, paid
once per *changed advertiser* per round -- independent of plan size.
This experiment measures that per-event cost in isolation, then runs the
Fig. 4 cross-round workload with the dirty set flowing entirely over the
bus and verifies the accounting: cached work stays at or below uncached
work, and the bus's total overhead is exactly ``events_published`` times
the measured per-event cost.  A compact dirty-fraction sweep records the
autotuner's bypass decisions.  Everything is written to
``BENCH_changefeed.json`` at the repo root as the reproduction record.

The work gates are counter arithmetic and machine-independent; the only
wall-clock gate is a deliberately generous per-event ceiling (100 us --
measured ~1 us) to catch pathological regressions without CI noise.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.engine.autotune import CacheAutotuner
from repro.engine.changefeed import BidChanged, ChangeFeed
from repro.engine.pipeline import SharedAuctionEngine
from repro.instrument import MetricsCollector, names
from repro.metrics.tables import ExperimentTable
from repro.plans.executor import CrossRoundPlanExecutor, PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.workloads.fig4 import fig4_instance
from repro.workloads.generator import MarketConfig, generate_market

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_changefeed.json"
PER_EVENT_CEILING_SECONDS = 100e-6
MICRO_EVENTS = 20_000
ROUNDS = 50
DIRTY_FRACTION = 0.05
SWEEP_FRACTIONS = (0.01, 0.10, 0.50, 1.00)
SWEEP_ROUNDS = 12


def _measure_per_event_seconds():
    """Publish/drain cost per event with one realistic subscriber."""
    feed = ChangeFeed()
    sub = feed.subscribe(
        "bench", kinds=("bid_changed", "budget_changed")
    )
    events = [BidChanged(i % 64) for i in range(MICRO_EVENTS)]
    started = time.perf_counter()
    for index, event in enumerate(events):
        feed.publish(event)
        if index % 100 == 99:  # drain in round-sized batches
            sub.drain()
    sub.drain()
    elapsed = time.perf_counter() - started
    assert feed.events_published == MICRO_EVENTS
    assert feed.events_consumed == MICRO_EVENTS
    return elapsed / MICRO_EVENTS


def _fig4_bus_run(seed):
    """The E11 cross-round workload, dirty sets flowing over the bus."""
    instance = fig4_instance(0.9)
    plan = greedy_shared_plan(instance)
    rng = random.Random(seed)
    variables = sorted(instance.variables)
    scores = {v: rng.uniform(0.1, 100.0) for v in variables}
    dirty_count = max(1, int(len(variables) * DIRTY_FRACTION))

    feed = ChangeFeed()
    cached_collector = MetricsCollector()
    uncached_collector = MetricsCollector()
    cached = CrossRoundPlanExecutor(plan, 3, cached_collector)
    cached.connect(feed)
    uncached = PlanExecutor(plan, 3, uncached_collector)

    for round_index in range(ROUNDS):
        if round_index:
            for v in rng.sample(variables, dirty_count):
                scores[v] = rng.uniform(0.1, 100.0)
                feed.publish(BidChanged(v))
        occurring = [
            q.name for q in instance.queries if rng.random() < q.search_rate
        ]
        a = cached.run_round(dict(scores), occurring)
        b = uncached.run_round(dict(scores), occurring)
        assert a.answers == b.answers, f"diverged in round {round_index}"

    return (
        cached_collector.counter(names.PLAN_NODES),
        uncached_collector.counter(names.PLAN_NODES),
        feed.events_published,
    )


def _sweep_point(fraction):
    """Bypass behaviour of the autotuned executor at one dirty fraction."""
    instance = fig4_instance(0.9)
    plan = greedy_shared_plan(instance)
    variables = sorted(instance.variables)
    order = list(variables)
    random.Random(1).shuffle(order)
    dirty_count = max(1, int(round(fraction * len(variables))))

    feed = ChangeFeed()
    autotuner = CacheAutotuner(warmup=3)
    executor = CrossRoundPlanExecutor(plan, 3, autotuner=autotuner)
    executor.connect(feed)
    scores = {v: float(i * 37 % 50 + 1) for i, v in enumerate(variables)}
    for round_index in range(SWEEP_ROUNDS):
        if round_index:
            for v in order[:dirty_count]:
                scores[v] = scores[v] + 1.0
                feed.publish(BidChanged(v))
        executor.run_round(dict(scores))
    return autotuner.bypass_rounds


@pytest.mark.experiment("ChangeFeed")
def test_bus_overhead_and_autotune_sweep(benchmark):
    per_event = _measure_per_event_seconds()
    assert per_event <= PER_EVENT_CEILING_SECONDS, (
        f"bus costs {per_event * 1e6:.1f} us/event "
        f"(ceiling {PER_EVENT_CEILING_SECONDS * 1e6:.0f} us)"
    )

    table = ExperimentTable(
        f"Bus-driven cross-round cache, fig4 sr=0.9, {ROUNDS} rounds, "
        f"{DIRTY_FRACTION:.0%} dirty",
        ["seed", "cached nodes", "uncached nodes", "ratio", "bus events"],
    )
    fig4_record = {}
    for seed in range(3):
        cached_nodes, uncached_nodes, events = _fig4_bus_run(seed)
        ratio = cached_nodes / uncached_nodes if uncached_nodes else 0.0
        table.add(seed, cached_nodes, uncached_nodes, ratio, events)
        assert cached_nodes <= uncached_nodes, seed
        fig4_record[f"seed {seed}"] = {
            "cached_nodes": cached_nodes,
            "uncached_nodes": uncached_nodes,
            "ratio": round(ratio, 3),
            "events_published": events,
            "bus_overhead_seconds": round(events * per_event, 6),
        }
    table.show()

    # Engine-level event traffic on a generated market: how many events
    # one real round publishes (clicks, displays, expiries, m_i moves).
    market = generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=4,
            specialists_per_category=15,
            generalists=20,
            generalist_categories=2,
            seed=9,
        )
    )
    collector = MetricsCollector()
    engine = SharedAuctionEngine(
        market.advertisers,
        slot_factors=[0.3, 0.2, 0.1],
        search_rates=market.search_rates,
        mode="shared",
        exec_cache=True,
        seed=13,
        collector=collector,
    )
    engine.run(30)
    engine_events = collector.counter(names.BUS_EVENTS_PUBLISHED)
    assert engine_events > 0
    assert collector.counter(names.BUS_EVENTS_CONSUMED) > 0

    sweep = {}
    bypasses = []
    for fraction in SWEEP_FRACTIONS:
        bypass_rounds = _sweep_point(fraction)
        sweep[f"{fraction:.0%} dirty"] = {"bypass_rounds": bypass_rounds}
        bypasses.append(bypass_rounds)
    assert bypasses == sorted(bypasses), (
        f"bypass not monotone over {SWEEP_FRACTIONS}: {bypasses}"
    )
    assert bypasses[0] == 0 and bypasses[-1] > 0

    record = {
        "per_event_seconds": round(per_event, 9),
        "per_event_ceiling_seconds": PER_EVENT_CEILING_SECONDS,
        "micro_events": MICRO_EVENTS,
        "fig4 sr=0.9": fig4_record,
        "engine market (30 rounds)": {
            "events_published": engine_events,
            "events_per_round": round(engine_events / 30, 1),
            "estimated_bus_overhead_seconds": round(
                engine_events * per_event, 6
            ),
        },
        "autotune_sweep": sweep,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    # Timed kernel: one published event delivered to one subscriber and
    # drained -- the marginal cost a dirty advertiser adds to a round.
    feed = ChangeFeed()
    sub = feed.subscribe("kernel", kinds=("bid_changed",))
    event = BidChanged(7)

    def publish_and_drain():
        feed.publish(event)
        sub.drain()

    benchmark(publish_and_drain)
