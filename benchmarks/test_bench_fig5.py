"""E4 -- Figure 5: the complexity table, checked empirically.

For the table's PTIME rows (non-associative operators), the optimal
shared plan is common-subexpression sharing after canonical
normalization; we confirm by brute force that CSE node counts match the
exhaustive optimum over syntactic DAGs on random small instances.  For
the NP-complete rows, the Theorem 2/3 reduction embeds set cover:
optimal plan extra cost decodes the exact minimum cover.  The benchmark
times the exhaustive optimal planner on a reduction instance (the
operation the table says cannot stay polynomial).
"""

from __future__ import annotations

import itertools

import pytest

from repro.algebra.axioms import Axiom, AxiomProfile, SEMILATTICE_WITH_IDENTITY
from repro.algebra.complexity import Complexity, complexity_of, fig5_rows
from repro.metrics.tables import ExperimentTable
from repro.plans.optimal import optimal_plan
from repro.plans.reductions import set_cover_to_instance_closed
from repro.plans.set_cover import exact_min_set_cover


@pytest.mark.experiment("Fig5")
def test_fig5_table_and_reduction(benchmark):
    table = ExperimentTable(
        "Fig. 5 -- complexity of optimal shared aggregation",
        ["A1", "A2", "A3", "A4", "A5", "complexity"],
    )
    for row in fig5_rows():
        table.add(*row.pattern, row.complexity.value)
    table.show()

    # Named operators land on the right rows.
    checks = ExperimentTable(
        "Operator classification",
        ["operator", "profile", "complexity"],
    )
    cases = [
        ("top-k merge", SEMILATTICE_WITH_IDENTITY),
        ("sum (Abelian group)", AxiomProfile({Axiom.A1, Axiom.A2, Axiom.A4, Axiom.A5})),
        ("commutative magma", AxiomProfile({Axiom.A4})),
        ("quasigroup", AxiomProfile({Axiom.A5})),
        ("semigroup (open)", AxiomProfile({Axiom.A1})),
    ]
    expected = [
        Complexity.NP_COMPLETE,
        Complexity.NP_COMPLETE,
        Complexity.PTIME,
        Complexity.PTIME,
        Complexity.UNKNOWN,
    ]
    for (name, profile), want in zip(cases, expected):
        got = complexity_of(profile)
        checks.add(name, repr(profile), got.value)
        assert got is want
    checks.show()

    # NP-complete row witnessed by the reduction: optimal extra cost
    # decodes the minimum set cover exactly (Theorems 2/3).
    universe = frozenset(range(6))
    collection = [
        frozenset({0, 1}),
        frozenset({2, 3}),
        frozenset({4, 5}),
        frozenset({0, 2}),
        frozenset({1, 3}),
    ]
    instance = set_cover_to_instance_closed(universe, collection)
    min_cover = exact_min_set_cover(universe, collection)

    def solve():
        return optimal_plan(instance)

    plan = benchmark(solve)
    assert plan.extra_cost == len(min_cover) - 2

    reduction = ExperimentTable(
        "Theorem 2/3 reduction check",
        ["universe", "collection", "min cover", "optimal extra cost"],
    )
    reduction.add(len(universe), len(collection), len(min_cover), plan.extra_cost)
    reduction.show()


@pytest.mark.experiment("Fig5")
def test_fig5_exhaustive_profile_coverage(benchmark):
    """Every one of the 32 axiom profiles is classified consistently:
    matched rows are unique, and unmatched profiles are exactly the
    paper's open cases (A1=Y, A4=N)."""

    def classify_all():
        out = {}
        for mask in range(32):
            profile = AxiomProfile(
                {a for i, a in enumerate(Axiom) if mask >> i & 1}
            )
            out[profile] = complexity_of(profile)
        return out

    results = benchmark(classify_all)
    for profile, complexity in results.items():
        matches = [r for r in fig5_rows() if r.matches(profile)]
        assert len(matches) <= 1
        if complexity is Complexity.UNKNOWN:
            assert profile.associative and not profile.commutative
        else:
            assert matches and matches[0].complexity is complexity
