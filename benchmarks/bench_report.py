"""Merge every ``BENCH_*.json`` into one deterministic report.

The benchmark suite leaves one JSON artifact per subsystem at the repo
root (``BENCH_planner.json``, ``BENCH_sharedsort.json``, ...).  Each has
its own nested shape, which makes "did anything regress?" a manual
scavenger hunt.  This tool flattens all of them into a single sorted
``bench_tables.txt`` -- dotted paths, one metric per line, floats
formatted with ``%.6g`` so the file is byte-stable across runs on the
same inputs -- and evaluates a small table of *tracked* metrics with
explicit floors/ceilings.

Usage::

    python benchmarks/bench_report.py           # write bench_tables.txt
    python benchmarks/bench_report.py --check   # exit 1 on regression

``--check`` is the CI posture: a tracked metric that is missing or out
of bound fails the run.  The tracked bounds are deliberately the
*identity and work-ratio* metrics (plans identical, answers identical,
cache work ratios, kernel speedups measured against an in-run baseline)
rather than raw wall-clock numbers, which vary with the host.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_NAME = "bench_tables.txt"

# (file stem, dotted path, op, bound) -- `op` is one of ">=", "<=",
# "is_true".  A tracked metric whose file exists but whose path is
# missing, or whose value is out of bound, is a regression.
TRACKED: Tuple[Tuple[str, str, str, float], ...] = (
    ("BENCH_planner", "fig4 default.plans_identical", "is_true", 0),
    ("BENCH_planner", "fig4 default.covers_computed.reduction", ">=", 1.5),
    ("BENCH_sharedsort", "scaled 24x96.builder.plans_identical",
     "is_true", 0),
    ("BENCH_sharedsort", "scaled 24x96.cross_round.answers_identical",
     "is_true", 0),
    ("BENCH_sharedsort", "scaled 24x96.builder.savings_evaluated.reduction",
     ">=", 5.0),
    ("BENCH_budgets", "policies.throttled.revenue_loss", "<=", 0.01),
    ("BENCH_budgets", "policies.naive.revenue_loss", ">=", 0.05),
    ("BENCH_changefeed", "per_event_seconds", "<=", 1e-4),
    ("BENCH_serving", "gates.exec_cache_work_ratio", "<=", 0.9),
    ("BENCH_serving", "gates.sort_cache_work_ratio", "<=", 0.9),
    ("BENCH_serving", "columnar_serving.outcomes_identical", "is_true", 0),
    ("BENCH_serving", "columnar_serving.speedup_per_query", ">=", 2.0),
    ("BENCH_columnar", "kernels.outcomes_identical", "is_true", 0),
    ("BENCH_columnar", "kernels.speedup", ">=", 3.0),
    ("BENCH_columnar", "matching.outcomes_identical", "is_true", 0),
    ("BENCH_columnar", "matching.kernel_speedup", ">=", 3.0),
    ("BENCH_columnar", "sharded.single_shard_identical", "is_true", 0),
)


def flatten(data, prefix: str = "") -> Iterator[Tuple[str, object]]:
    """Depth-first flatten of nested dicts into sorted dotted paths."""
    for key in sorted(data, key=str):
        value = data[key]
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from flatten(value, f"{path}.")
        else:
            yield path, value


def format_value(value) -> str:
    """A byte-stable rendering: bools as true/false, floats as %.6g."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(format_value(v) for v in value) + "]"
    return str(value)


def load_benchmarks(root: Path) -> Dict[str, dict]:
    """Every ``BENCH_*.json`` under ``root``, keyed by stem, sorted."""
    benchmarks: Dict[str, dict] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        with open(path) as handle:
            benchmarks[path.stem] = json.load(handle)
    return benchmarks


def lookup(data: dict, dotted: str):
    """Resolve a dotted path; raises KeyError when any segment misses."""
    node = data
    for segment in dotted.split("."):
        node = node[segment]
    return node


def evaluate_tracked(
    benchmarks: Dict[str, dict],
) -> List[Tuple[str, str, str, str]]:
    """One ``(metric, value, bound, status)`` row per tracked metric.

    Status is ``ok``, ``REGRESSED`` (out of bound), or ``MISSING`` (the
    file or the path is absent).  Files absent entirely are reported as
    MISSING rather than skipped: a benchmark that silently stopped
    producing its artifact is itself a regression.
    """
    rows: List[Tuple[str, str, str, str]] = []
    for stem, dotted, op, bound in TRACKED:
        metric = f"{stem}:{dotted}"
        if stem not in benchmarks:
            rows.append((metric, "-", _bound_text(op, bound), "MISSING"))
            continue
        try:
            value = lookup(benchmarks[stem], dotted)
        except (KeyError, TypeError):
            rows.append((metric, "-", _bound_text(op, bound), "MISSING"))
            continue
        if op == "is_true":
            healthy = value is True
        elif op == ">=":
            healthy = float(value) >= bound
        elif op == "<=":
            healthy = float(value) <= bound
        else:  # pragma: no cover - TRACKED is a literal
            raise ValueError(f"unknown op {op!r}")
        rows.append(
            (
                metric,
                format_value(value),
                _bound_text(op, bound),
                "ok" if healthy else "REGRESSED",
            )
        )
    return rows


def _bound_text(op: str, bound: float) -> str:
    if op == "is_true":
        return "== true"
    return f"{op} {format_value(float(bound))}"


def render(benchmarks: Dict[str, dict]) -> str:
    """The full report: tracked table first, then every flat metric."""
    lines: List[str] = []
    rows = evaluate_tracked(benchmarks)
    lines.append("# Tracked metrics")
    lines.append("#")
    width = max(len(metric) for metric, *_ in rows)
    for metric, value, bound, status in rows:
        lines.append(
            f"# {metric:<{width}}  {value:>10}  ({bound})  {status}"
        )
    lines.append("")
    for stem in sorted(benchmarks):
        lines.append(f"[{stem}]")
        for path, value in flatten(benchmarks[stem]):
            lines.append(f"{path} = {format_value(value)}")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="merge BENCH_*.json into bench_tables.txt"
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"report path (default <root>/{REPORT_NAME})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any tracked metric is missing or regressed",
    )
    args = parser.parse_args(argv)
    benchmarks = load_benchmarks(args.root)
    if not benchmarks:
        print(f"no BENCH_*.json under {args.root}", file=sys.stderr)
        return 1
    report = render(benchmarks)
    output = args.output or args.root / REPORT_NAME
    output.write_text(report + "\n")
    unhealthy = [
        row for row in evaluate_tracked(benchmarks) if row[3] != "ok"
    ]
    print(
        f"{len(benchmarks)} benchmark files -> {output} "
        f"({len(TRACKED) - len(unhealthy)}/{len(TRACKED)} tracked ok)"
    )
    for metric, value, bound, status in unhealthy:
        print(f"  {status}: {metric} = {value} (want {bound})")
    if args.check and unhealthy:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
