"""E11 -- instrumentation overhead of the metrics collector.

The collector is designed for near-zero disabled cost: hot loops
accumulate locally and flush a handful of no-op calls per round, so an
engine built without a collector (the ``NULL`` singleton) should run
within noise of the pre-instrumentation engine.  This module times one
engine round in three configurations -- no collector, enabled counters,
and counters plus a trace ring -- and prints the measured per-round
ratios, the empirical answer to the "< 3% disabled overhead" budget.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import SharedAuctionEngine
from repro.instrument import MetricsCollector, TraceRing
from repro.metrics.tables import ExperimentTable
from repro.workloads.generator import MarketConfig, generate_market

WARMUP_ROUNDS = 5
TIMED_ROUNDS = 60


def _market():
    return generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=4,
            specialists_per_category=15,
            generalists=20,
            generalist_categories=2,
            seed=9,
        )
    )


def _engine(market, collector=None):
    return SharedAuctionEngine(
        market.advertisers,
        slot_factors=[0.3, 0.2, 0.1],
        search_rates=market.search_rates,
        mode="shared",
        seed=13,
        collector=collector,
    )


def _time_rounds(engine) -> float:
    for _ in range(WARMUP_ROUNDS):
        engine.run_round()
    start = time.perf_counter()
    for _ in range(TIMED_ROUNDS):
        engine.run_round()
    return (time.perf_counter() - start) / TIMED_ROUNDS


@pytest.mark.experiment("InstrumentationOverhead")
def test_collector_overhead(benchmark):
    market = _market()
    seconds = {
        "disabled (NULL)": _time_rounds(_engine(market)),
        "counters": _time_rounds(_engine(market, MetricsCollector())),
        "counters + trace": _time_rounds(
            _engine(market, MetricsCollector(trace=TraceRing(65536)))
        ),
    }
    baseline = seconds["disabled (NULL)"]
    table = ExperimentTable(
        f"Collector overhead, mean of {TIMED_ROUNDS} shared-mode rounds",
        ["configuration", "us/round", "vs disabled"],
    )
    for configuration, value in seconds.items():
        table.add(
            configuration, value * 1e6, f"{value / baseline:.3f}x"
        )
    table.show()

    # The timed benchmark pins the disabled path, the one the <3%
    # regression budget is measured on.
    engine = _engine(market)
    benchmark(lambda: engine.run_round())

    # Wide sanity bound only -- wall-clock ratios are noisy in CI; the
    # point is catching an accidental per-entry hot-path regression
    # (which shows up as 2-10x, not 1.2x).
    assert seconds["counters + trace"] < baseline * 3.0
