"""E11 -- the round-granularity tradeoff (Section II-B discussion).

"Choosing a coarser granularity will lead to higher sharing between
auctions (since more searches will occur per round), and thus greater
overall efficiency, [but] it will also increase the latency."  We stream
Poisson query arrivals through the batcher at several round lengths and
measure (a) duplicate-auction collapse plus shared-plan scan savings per
query, and (b) the mean queueing latency a query suffers waiting for its
round to close.  The paper cites ~2.2 s as the tolerable median latency.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.rounds import RoundBatcher, TimestampedQuery
from repro.metrics.tables import ExperimentTable
from repro.plans.baselines import no_sharing_plan
from repro.plans.executor import PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import SharedAggregationInstance
from repro.workloads.generator import MarketConfig, generate_market

HORIZON_SECONDS = 120.0
QUERIES_PER_SECOND = 3.0


def poisson_stream(market, seed: int):
    """Timestamped phrase arrivals: Poisson process, phrases by rate."""
    rng = random.Random(seed)
    phrases = sorted(market.search_rates)
    weights = [market.search_rates[p] for p in phrases]
    t = 0.0
    out = []
    while t < HORIZON_SECONDS:
        t += rng.expovariate(QUERIES_PER_SECOND)
        out.append(
            TimestampedQuery(t, rng.choices(phrases, weights=weights)[0])
        )
    return out


@pytest.mark.experiment("RoundGranularity")
def test_round_length_tradeoff(benchmark):
    market = generate_market(
        MarketConfig(
            num_categories=2,
            phrases_per_category=3,
            specialists_per_category=10,
            generalists=8,
            seed=6,
        )
    )
    instance = SharedAggregationInstance.from_sets(
        {p: list(ids) for p, ids in market.phrase_advertisers.items()},
        market.search_rates,
    )
    shared = PlanExecutor(greedy_shared_plan(instance), 3)
    unshared = PlanExecutor(no_sharing_plan(instance), 3)
    scores = {a.advertiser_id: a.bid * a.ctr_factor for a in market.advertisers}
    stream = poisson_stream(market, seed=1)

    table = ExperimentTable(
        "Round granularity: sharing vs latency "
        f"(~{QUERIES_PER_SECOND:g} queries/s for {HORIZON_SECONDS:g} s)",
        [
            "round length (s)",
            "queries",
            "auctions resolved",
            "shared scans/query",
            "unshared scans/query",
            "mean latency (s)",
        ],
    )
    previous_scans_per_query = float("inf")
    for round_length in (0.25, 2 / 3, 1.5, 3.0):
        batcher = RoundBatcher(round_length)
        total_queries = 0
        total_auctions = 0
        shared_scans = 0
        unshared_scans = 0
        latency_sum = 0.0
        for batch in batcher.batch(stream):
            phrases = list(batch.distinct_phrases)
            total_queries += batch.total_queries
            total_auctions += len(phrases)
            shared_scans += shared.run_round(scores, phrases).advertisers_scanned
            unshared_scans += unshared.run_round(
                scores, phrases
            ).advertisers_scanned
            # A query waits until its round closes.
            close_time = batch.start_time + round_length
        for query in stream:
            round_index = int(query.arrival_time // round_length)
            close_time = (round_index + 1) * round_length
            latency_sum += close_time - query.arrival_time
        scans_per_query = shared_scans / total_queries
        table.add(
            round_length,
            total_queries,
            total_auctions,
            scans_per_query,
            unshared_scans / total_queries,
            latency_sum / len(stream),
        )
        # Coarser rounds must amortize work better...
        assert scans_per_query <= previous_scans_per_query + 1e-9
        previous_scans_per_query = scans_per_query
    table.show()
    print(
        "\nShape: scans per query fall as rounds coarsen (duplicate"
        "\nauctions collapse and the shared plan amortizes), while mean"
        "\nlatency grows linearly with the round length -- the paper's"
        "\nSection II-B tradeoff."
    )

    batcher = RoundBatcher(2 / 3)
    benchmark(lambda: sum(1 for _ in batcher.batch(stream)))
