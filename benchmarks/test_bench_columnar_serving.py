"""E21 -- cached-columnar serving: the tentpole composition, measured.

ISSUE 10's headline path: ``layout="columnar"`` with the cross-round
caches on, serving queries one at a time.  Two halves:

1. **Identity** (50 seeds): columnar cached serving is byte-identical
   to object cached serving on the same arrival trace -- every query's
   winners and prices, click money, and the final budget books -- for
   both cache families, with ``cache_verify=True`` so an event-uncovered
   stale score raises instead of diverging.
2. **Speed** (the scaled Fig. 4 market, 2000 advertisers / 480
   phrases): cached-columnar serving resolves a query at least 2x
   faster than cached-object serving.  The gate runs on the shared-sort
   family, which is the only one whose *object* engine is even
   constructible at this scale -- the object exec path's greedy plan
   build exceeds minutes at 480 phrases (the ``pair_strategy="cover"``
   planner is quadratic-ish in the phrase overlap structure), while the
   columnar fragment executor builds in milliseconds.  That asymmetry
   is recorded, not hidden: the exec family reports the columnar
   per-query cost at scale with an explicitly infeasible object
   baseline.

Results merge into the ``columnar_serving`` key of
``BENCH_serving.json`` (E18 owns the other keys); the tracked entries
(``columnar_serving.outcomes_identical``,
``columnar_serving.speedup_per_query``) feed
``bench_report.py --check``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from repro.engine import SharedAuctionEngine
from repro.metrics.tables import ExperimentTable
from repro.serving import ServingEngine, TrafficGenerator
from repro.workloads.fig4 import fig4_market
from repro.workloads.generator import MarketConfig, generate_market

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
SPEEDUP_FLOOR = 2.0
IDENTITY_SEEDS = 50
IDENTITY_QUERIES = 30
SLOTS = [0.3, 0.2, 0.1]
SCALED = dict(num_queries=60, num_advertisers=250, num_components=8)
WARMUP_QUERIES = 50
TIMED_QUERIES = 250

FAMILIES = {
    "exec": {"mode": "shared", "exec_cache": True},
    "sort": {"mode": "shared-sort", "sort_cache": True},
}


def _small_market(seed: int):
    return generate_market(
        MarketConfig(
            num_categories=2,
            phrases_per_category=3,
            specialists_per_category=5,
            generalists=3,
            median_budget_cents=1500,
            seed=seed,
        )
    )


def _loop(advertisers, rates, layout, seed, **kw):
    engine = SharedAuctionEngine(
        advertisers,
        slot_factors=SLOTS,
        search_rates=rates,
        seed=seed,
        layout=layout,
        **kw,
    )
    traffic = TrafficGenerator.from_search_rates(
        rates, rate_qps=200.0, seed=seed
    )
    return engine, ServingEngine(engine, traffic, keep_history=True)


def _served_outcome(advertisers, rates, layout, seed, **kw):
    engine, loop = _loop(advertisers, rates, layout, seed, **kw)
    report = loop.run(IDENTITY_QUERIES)
    return (
        [(q.phrase, q.allocation) for q in report.history],
        report.revenue_cents,
        report.forgiven_cents,
        report.clicks,
        engine.budget_manager.spent_snapshot(),
    )


def _timed_ms_per_query(advertisers, rates, layout, **kw):
    engine = SharedAuctionEngine(
        advertisers,
        slot_factors=SLOTS,
        search_rates=rates,
        seed=17,
        layout=layout,
        **kw,
    )
    traffic = TrafficGenerator.from_search_rates(
        rates, rate_qps=200.0, seed=17
    )
    loop = ServingEngine(engine, traffic, keep_history=False)
    loop.run(WARMUP_QUERIES)  # past cold caches and lazy presorts
    start = time.perf_counter()
    loop.run(TIMED_QUERIES)
    return (time.perf_counter() - start) * 1000.0 / TIMED_QUERIES


@pytest.mark.experiment("E21")
def test_cached_columnar_serving_identity_and_speed(benchmark):
    # ------------------------------------------------------------- 1.
    # 50-seed trace identity, both cache families, verify on.
    identical = True
    for seed in range(IDENTITY_SEEDS):
        market = _small_market(seed)
        for family, config in FAMILIES.items():
            outcomes = {
                layout: _served_outcome(
                    market.advertisers,
                    market.search_rates,
                    layout,
                    seed,
                    cache_verify=True,
                    **config,
                )
                for layout in ("object", "columnar")
            }
            same = outcomes["object"] == outcomes["columnar"]
            identical = identical and same
            assert same, (
                f"cached serving diverged across layouts "
                f"(family {family}, seed {seed})"
            )

    # ------------------------------------------------------------- 2.
    # Per-query wall clock at the scaled point.
    advertisers, rates = fig4_market(
        seed=4, median_budget_cents=20_000, **SCALED
    )
    sort_object_ms = _timed_ms_per_query(
        advertisers, rates, "object",
        mode="shared-sort", sort_cache=True, cache_verify=False,
    )
    sort_columnar_ms = _timed_ms_per_query(
        advertisers, rates, "columnar",
        mode="shared-sort", sort_cache=True, cache_verify=False,
    )
    exec_columnar_ms = _timed_ms_per_query(
        advertisers, rates, "columnar",
        mode="shared", exec_cache=True, cache_verify=False,
    )
    speedup = sort_object_ms / sort_columnar_ms
    assert speedup >= SPEEDUP_FLOOR, (
        f"cached-columnar serving only {speedup:.2f}x faster per query "
        f"than cached-object serving (floor {SPEEDUP_FLOOR}x)"
    )

    record = {
        "workload": {
            **SCALED,
            "advertisers": len(advertisers),
            "phrases": len(rates),
            "warmup_queries": WARMUP_QUERIES,
            "timed_queries": TIMED_QUERIES,
        },
        "identity_seeds": IDENTITY_SEEDS,
        "identity_queries_per_seed": IDENTITY_QUERIES,
        "outcomes_identical": identical,
        "speedup_per_query": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "sort_cache": {
            "object_ms_per_query": round(sort_object_ms, 4),
            "columnar_ms_per_query": round(sort_columnar_ms, 4),
        },
        "exec_cache": {
            "columnar_ms_per_query": round(exec_columnar_ms, 4),
            "object_baseline": (
                "infeasible: greedy plan construction exceeds minutes "
                "at 480 phrases; the columnar fragment executor builds "
                "in milliseconds"
            ),
        },
    }
    merged = {}
    if BENCH_JSON.exists():
        merged = json.loads(BENCH_JSON.read_text())
    merged["columnar_serving"] = record
    BENCH_JSON.write_text(json.dumps(merged, indent=2) + "\n")

    table = ExperimentTable(
        "E21: cached-columnar serving "
        f"({len(advertisers)} advertisers, {len(rates)} phrases)",
        ["metric", "value"],
    )
    table.add("identity seeds x families", f"{IDENTITY_SEEDS} x 2")
    table.add("sort-cache object (ms/q)", round(sort_object_ms, 3))
    table.add("sort-cache columnar (ms/q)", round(sort_columnar_ms, 3))
    table.add("speedup per query", round(speedup, 2))
    table.add("exec-cache columnar (ms/q)", round(exec_columnar_ms, 3))
    table.show()

    # Timed kernel: one steady-state cached-columnar serving tick.
    engine, loop = _loop(
        advertisers, rates, "columnar", 17,
        mode="shared-sort", sort_cache=True, cache_verify=False,
    )
    loop.keep_history = False
    loop.run(WARMUP_QUERIES)
    arrivals = iter(loop.traffic)

    def serve_tick():
        loop.serve_one(next(arrivals))

    benchmark(serve_tick)
