"""E20 -- columnar kernels and sharded execution (ISSUE 9 gates).

Three claims, three gates, on the scaled Fig. 4 workload (eight tiled
components, 2000 advertisers, 480 phrases -- large enough that the
kernels measure real work):

1. **Kernels**: ``layout="columnar"`` runs the per-round scoring +
   top-k stage at least 3x faster than the object layout in wall clock,
   while a 50-seed full-engine sweep stays byte-identical (allocations,
   revenue, budget trajectories) -- the vectorization buys work, never
   outcomes.
2. **Single-shard identity**: ``ShardedEngine(shards=1)`` reproduces
   the sequential engine's run byte for byte; sharding is a
   conservative extension, not a second auction.
3. **Scaling curve**: wall clock of the sharded engine at 1, 2, and 4
   workers is recorded to ``BENCH_columnar.json``.  The >= 1.8x
   speedup floor at 4 workers is asserted only when the host actually
   has 4 cores (``os.cpu_count() >= 4``); the curve itself is recorded
   unconditionally, with the core count alongside, so a single-core CI
   run records an honest flat curve instead of a vacuous pass.

A fourth claim rides with this file (ISSUE 10): the Section V
**non-separable matching** path has a columnar kernel --
``ctr_ij * b_i`` as one broadcast product, the per-slot top-k prune as
``argpartition`` columns -- that is at least 3x faster than the object
path at the scaled advertiser count while returning the *same*
allocation, bit for bit, across a seeded sweep
(``test_columnar_pruned_matching_gate``).

Results land in ``BENCH_columnar.json`` at the repo root; the tracked
entries (``kernels.speedup``, ``kernels.outcomes_identical``,
``sharded.single_shard_identical``, ``matching.kernel_speedup``,
``matching.outcomes_identical``) feed ``bench_report.py --check``.
Both tests merge their sections into the JSON instead of overwriting
it, so either can be re-run alone.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from repro.core.advertiser import Advertiser
from repro.core.auction import AuctionSpec
from repro.core.ctr import MatrixCTRModel
from repro.core.winner_determination import (
    determine_winners_nonseparable,
    determine_winners_nonseparable_columnar,
    nonseparable_weight_matrix,
)
from repro.engine.pipeline import RoundReport, SharedAuctionEngine
from repro.engine.sharded import ShardedEngine
from repro.metrics.tables import ExperimentTable
from repro.workloads.fig4 import fig4_market

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"
KERNEL_SPEEDUP_FLOOR = 3.0
MATCHING_SPEEDUP_FLOOR = 3.0
SHARDED_SPEEDUP_FLOOR = 1.8
EQUALITY_SEEDS = 50
MATCHING_EQUALITY_SEEDS = 50
SLOTS = [0.3, 0.2, 0.1]


def _merge_bench_json(update: dict) -> None:
    """Read-modify-write ``BENCH_columnar.json``: update the caller's
    top-level keys, preserve everyone else's."""
    merged = {}
    if BENCH_JSON.exists():
        merged = json.loads(BENCH_JSON.read_text())
    merged.update(update)
    BENCH_JSON.write_text(json.dumps(merged, indent=2) + "\n")

# The scaled point: 8 tiled Fig. 4 components of 250 advertisers / 60
# queries each -> 2000 advertisers, 480 phrases.
SCALED = dict(num_queries=60, num_advertisers=250, num_components=8)


def _scaled_market(seed=0):
    return fig4_market(seed=seed, **SCALED)


def _engine(advertisers, rates, layout, **kw):
    kw.setdefault("mode", "unshared")
    kw.setdefault("seed", 7)
    return SharedAuctionEngine(
        tuple(advertisers), SLOTS, rates, layout=layout, **kw
    )


def _time_kernel(engine, occurring, repeats=3, rounds_per_repeat=3):
    """Best-of-N wall clock of the scoring + ranking stages alone.

    Drives the two round stages the columnar layout replaces --
    effective scoring and per-phrase top-k -- without allocation or
    click settlement, so the measurement isolates exactly the kernels
    the gate is about.  The budget books never move, so every timed
    iteration performs identical work.
    """
    def one_round(round_index):
        report = RoundReport(round_index, tuple(occurring))
        scores, effective = engine._effective_scores(
            occurring, round_index
        )
        rankings = engine._rank_phrases(
            occurring, scores, effective, report
        )
        return rankings

    one_round(0)  # warm phrase-membership and presort caches
    best = float("inf")
    for repeat in range(repeats):
        start = time.perf_counter()
        for r in range(rounds_per_repeat):
            rankings = one_round(r + 1)
        best = min(best, (time.perf_counter() - start) / rounds_per_repeat)
    return best, rankings


@pytest.mark.experiment("E20")
def test_columnar_kernel_and_sharded_gates(benchmark):
    record = {
        "workload": {**SCALED, "seed": 0},
        "cpu_count": os.cpu_count(),
    }
    advertisers, rates = _scaled_market()
    occurring = sorted(rates)
    record["workload"]["advertisers"] = len(advertisers)
    record["workload"]["phrases"] = len(rates)
    assert len(advertisers) >= 2_000
    assert len(rates) >= 480

    # ------------------------------------------------------------- 1.
    # Kernel wall clock: object vs columnar on identical state.
    object_engine = _engine(advertisers, rates, "object")
    columnar_engine = _engine(advertisers, rates, "columnar")
    object_seconds, object_rankings = _time_kernel(
        object_engine, occurring
    )
    columnar_seconds, columnar_rankings = _time_kernel(
        columnar_engine, occurring
    )
    assert {
        phrase: ranking.entries
        for phrase, ranking in object_rankings.items()
    } == {
        phrase: ranking.entries
        for phrase, ranking in columnar_rankings.items()
    }, "kernel rankings diverged between layouts"
    speedup = object_seconds / columnar_seconds
    record["kernels"] = {
        "round_phrases": len(occurring),
        "object_seconds": round(object_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "speedup": round(speedup, 2),
    }
    assert speedup >= KERNEL_SPEEDUP_FLOOR, (
        f"columnar scoring+top-k only {speedup:.2f}x faster than the "
        f"object layout (floor {KERNEL_SPEEDUP_FLOOR}x)"
    )

    # ------------------------------------------------------------- 2.
    # 50-seed byte-identity sweep on a medium tiled market: the full
    # engine (clicks, budgets, settlement), not just the kernels.
    identical = True
    for seed in range(EQUALITY_SEEDS):
        adv, sweep_rates = fig4_market(
            num_queries=10, num_advertisers=40, num_components=2,
            seed=seed,
        )
        reports = {}
        for layout in ("object", "columnar"):
            engine = _engine(adv, sweep_rates, layout, seed=seed)
            reports[layout] = engine.run(6)
        same = (
            reports["object"].revenue_cents
            == reports["columnar"].revenue_cents
            and reports["object"].forgiven_cents
            == reports["columnar"].forgiven_cents
            and all(
                a.allocations == b.allocations
                for a, b in zip(
                    reports["object"].history,
                    reports["columnar"].history,
                )
            )
        )
        identical = identical and same
        assert same, f"layouts diverged on sweep seed {seed}"
    record["kernels"]["equality_seeds"] = EQUALITY_SEEDS
    record["kernels"]["outcomes_identical"] = identical

    # ------------------------------------------------------------- 3.
    # Single-shard identity + the worker scaling curve.
    sequential = SharedAuctionEngine(
        tuple(advertisers), SLOTS, rates, mode="unshared",
        layout="columnar", seed=7,
    )
    start = time.perf_counter()
    sequential_report = sequential.run(4)
    sequential_seconds = time.perf_counter() - start
    curve = {}
    single_shard_identical = None
    for workers in (1, 2, 4):
        with ShardedEngine(
            advertisers, SLOTS, rates, shards=workers, seed=7,
            mode="unshared", layout="columnar",
        ) as sharded:
            start = time.perf_counter()
            report = sharded.run(4)
            curve[str(workers)] = round(time.perf_counter() - start, 4)
        if workers == 1:
            single_shard_identical = (
                report.revenue_cents == sequential_report.revenue_cents
                and report.forgiven_cents
                == sequential_report.forgiven_cents
                and report.clicks == sequential_report.clicks
                and all(
                    a.allocations == b.allocations
                    for a, b in zip(
                        report.history, sequential_report.history
                    )
                )
            )
    assert single_shard_identical, (
        "ShardedEngine(shards=1) diverged from the sequential engine"
    )
    speedup_at_4 = curve["1"] / curve["4"]
    gate_enforced = (os.cpu_count() or 1) >= 4
    record["sharded"] = {
        "rounds": 4,
        "sequential_seconds": round(sequential_seconds, 4),
        "wall_seconds_by_workers": curve,
        "speedup_at_4": round(speedup_at_4, 2),
        "single_shard_identical": single_shard_identical,
        "gate_enforced": gate_enforced,
    }
    if gate_enforced:
        assert speedup_at_4 >= SHARDED_SPEEDUP_FLOOR, (
            f"4-worker sharded run only {speedup_at_4:.2f}x faster "
            f"(floor {SHARDED_SPEEDUP_FLOOR}x on a "
            f"{os.cpu_count()}-core host)"
        )

    record["acceptance"] = {
        "kernel_speedup_floor": KERNEL_SPEEDUP_FLOOR,
        "sharded_speedup_floor": SHARDED_SPEEDUP_FLOOR,
        "sharded_gate_requires_cores": 4,
    }
    _merge_bench_json(record)

    table = ExperimentTable(
        "E20: columnar kernels + sharded scaling "
        f"({len(advertisers)} advertisers, {len(rates)} phrases)",
        ["metric", "value"],
    )
    table.add("object kernel (s/round)", record["kernels"]["object_seconds"])
    table.add(
        "columnar kernel (s/round)", record["kernels"]["columnar_seconds"]
    )
    table.add("kernel speedup", record["kernels"]["speedup"])
    table.add("equality seeds", EQUALITY_SEEDS)
    for workers, seconds in curve.items():
        table.add(f"sharded {workers}w (s)", seconds)
    table.add("speedup at 4 workers", record["sharded"]["speedup_at_4"])
    table.add("cores", os.cpu_count())
    table.show()

    # Timed kernel for the benchmark harness: one columnar round.
    def columnar_round():
        report = RoundReport(99, tuple(occurring))
        scores, effective = columnar_engine._effective_scores(
            occurring, 99
        )
        columnar_engine._rank_phrases(occurring, scores, effective, report)

    benchmark(columnar_round)


def _nonseparable_spec(n: int, k: int, seed: int) -> AuctionSpec:
    rng = random.Random(seed)
    advertisers = [
        Advertiser(i, rng.uniform(0.1, 5.0), phrases=frozenset({"p"}))
        for i in range(n)
    ]
    rows = {i: tuple(rng.random() for _ in range(k)) for i in range(n)}
    return AuctionSpec("p", advertisers, MatrixCTRModel(rows), num_slots=k)


def _best_of(fn, repeats=5, inner=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


@pytest.mark.experiment("E21")
def test_columnar_pruned_matching_gate(benchmark):
    """Section V pruned matching, vectorized: >= 3x, bit-identical.

    The kernel under test is :func:`nonseparable_weight_matrix` (one
    broadcast product) plus the per-slot ``argpartition`` prune feeding
    the same Hungarian solver; the matrix is static market data, so the
    timed columnar path takes it precomputed -- that is the per-auction
    serving cost.  The object path is the oracle for both halves: a
    50-seed allocation-equality sweep and the wall-clock gate at the
    scaled advertiser count.
    """
    n, k = 2_000, len(SLOTS)
    spec = _nonseparable_spec(n, k, seed=0)
    precomputed = nonseparable_weight_matrix(spec)

    object_seconds = _best_of(lambda: determine_winners_nonseparable(spec))
    columnar_seconds = _best_of(
        lambda: determine_winners_nonseparable_columnar(
            spec, precomputed=precomputed
        )
    )
    build_seconds = _best_of(lambda: nonseparable_weight_matrix(spec))
    speedup = object_seconds / columnar_seconds

    identical = True
    for seed in range(MATCHING_EQUALITY_SEEDS):
        sweep = _nonseparable_spec(
            n=40 + 17 * seed % 160, k=1 + seed % 4, seed=seed
        )
        oracle = determine_winners_nonseparable(sweep)
        columnar = determine_winners_nonseparable_columnar(sweep)
        same = (
            columnar.slot_to_advertiser == oracle.slot_to_advertiser
            and columnar.expected_value == oracle.expected_value
        )
        identical = identical and same
        assert same, f"matching diverged on sweep seed {seed}"

    assert speedup >= MATCHING_SPEEDUP_FLOOR, (
        f"columnar pruned matching only {speedup:.2f}x faster than the "
        f"object path (floor {MATCHING_SPEEDUP_FLOOR}x)"
    )
    _merge_bench_json(
        {
            "matching": {
                "advertisers": n,
                "slots": k,
                "object_seconds": round(object_seconds, 5),
                "columnar_seconds": round(columnar_seconds, 5),
                "matrix_build_seconds": round(build_seconds, 5),
                "kernel_speedup": round(speedup, 2),
                "equality_seeds": MATCHING_EQUALITY_SEEDS,
                "outcomes_identical": identical,
                "speedup_floor": MATCHING_SPEEDUP_FLOOR,
            }
        }
    )
    table = ExperimentTable(
        f"E21: Section V pruned matching ({n} advertisers, {k} slots)",
        ["metric", "value"],
    )
    table.add("object (ms)", round(object_seconds * 1e3, 3))
    table.add("columnar (ms)", round(columnar_seconds * 1e3, 3))
    table.add("matrix build (ms)", round(build_seconds * 1e3, 3))
    table.add("speedup", round(speedup, 2))
    table.add("equality seeds", MATCHING_EQUALITY_SEEDS)
    table.show()

    benchmark(
        lambda: determine_winners_nonseparable_columnar(
            spec, precomputed=precomputed
        )
    )
