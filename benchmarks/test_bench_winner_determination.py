"""E1 support -- single-auction winner determination throughput.

Under separability winner determination is a single top-k scan over
``b_i * c_i`` (Section II-A); this benchmark verifies linear scaling by
operation count and times the scan and the pricing rules at increasing
population sizes.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    Advertiser,
    AuctionSpec,
    GeneralizedSecondPrice,
    LadderedVCG,
    SeparableCTRModel,
    determine_winners_separable,
)
from repro.metrics.tables import ExperimentTable


def build_spec(num_advertisers: int, seed: int) -> AuctionSpec:
    rng = random.Random(seed)
    advertisers = [
        Advertiser(
            i,
            bid=round(rng.uniform(0.05, 5.0), 2),
            ctr_factor=round(rng.uniform(0.3, 1.8), 3),
        )
        for i in range(num_advertisers)
    ]
    model = SeparableCTRModel(
        {a.advertiser_id: a.ctr_factor for a in advertisers},
        [0.30, 0.24, 0.18, 0.12, 0.06],
    )
    return AuctionSpec("p", advertisers, model)


@pytest.mark.experiment("WD-separable")
def test_separable_scan_scaling(benchmark):
    table = ExperimentTable(
        "Separable winner determination (top-k scan, k=5)",
        ["n", "objective"],
    )
    for n in (100, 1_000, 10_000):
        spec = build_spec(n, seed=n)
        allocation = determine_winners_separable(spec)
        assert len(allocation.winners()) == 5
        table.add(n, allocation.expected_value)
    table.show()

    spec = build_spec(10_000, seed=10_000)
    benchmark(lambda: determine_winners_separable(spec))


@pytest.mark.experiment("WD-separable")
def test_pricing_rules_after_wd(benchmark):
    spec = build_spec(2_000, seed=42)
    gsp = GeneralizedSecondPrice().run(spec)
    vcg = LadderedVCG().run(spec)
    # Same allocation, VCG charges at most GSP per winner.
    assert gsp.allocation.slot_to_advertiser == vcg.allocation.slot_to_advertiser
    for advertiser_id in gsp.allocation.winners():
        assert vcg.prices[advertiser_id] <= gsp.prices[advertiser_id] + 1e-9
    benchmark(lambda: GeneralizedSecondPrice().run(spec))
