"""E5 -- the Section IV gaming attack: revenue and forgiven clicks.

Sweeps the click delay: the attack needs outstanding ads, so a zero
delay is harmless, and longer delays make the naive policy forgive more
click value while throttling stays clean.
"""

from __future__ import annotations

import pytest

from repro.budgets.gaming import GamingAdvertiser, simulate_gaming
from repro.metrics.tables import ExperimentTable

ROUNDS = 120
AUCTIONS_PER_ROUND = 5


def population():
    attacker = GamingAdvertiser(0, bid_cents=100, budget_cents=150, ctr=0.5)
    honest = [
        GamingAdvertiser(i, bid_cents=80, budget_cents=100_000, ctr=0.5)
        for i in range(1, 4)
    ]
    return [attacker] + honest


@pytest.mark.experiment("Gaming")
def test_gaming_attack_vs_delay(benchmark):
    table = ExperimentTable(
        "Section IV gaming attack vs click delay "
        f"({ROUNDS} rounds x {AUCTIONS_PER_ROUND} auctions)",
        [
            "delay",
            "naive revenue ($)",
            "naive forgiven ($)",
            "throttled revenue ($)",
            "throttled forgiven ($)",
        ],
    )
    for delay in (0, 1, 3, 6):
        reports = {
            policy: simulate_gaming(
                population(),
                rounds=ROUNDS,
                auctions_per_round=AUCTIONS_PER_ROUND,
                click_delay_rounds=delay,
                policy=policy,
                seed=42,
            )
            for policy in ("naive", "throttled")
        }
        table.add(
            delay,
            reports["naive"].revenue_cents / 100,
            reports["naive"].forgiven_cents / 100,
            reports["throttled"].revenue_cents / 100,
            reports["throttled"].forgiven_cents / 100,
        )
        assert reports["throttled"].forgiven_cents == 0
        if delay >= 3:
            assert reports["naive"].forgiven_cents > 0
            assert (
                reports["throttled"].revenue_cents
                >= reports["naive"].revenue_cents
            )
    table.show()

    benchmark(
        lambda: simulate_gaming(
            population(),
            rounds=30,
            auctions_per_round=AUCTIONS_PER_ROUND,
            click_delay_rounds=3,
            policy="throttled",
            seed=42,
        )
    )
