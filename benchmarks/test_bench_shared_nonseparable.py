"""E16 -- Section V integration: shared pruning of non-separable rounds.

Simultaneous auctions with non-separable CTR matrices share one
descending-bid merge network; every (phrase, slot) pruning query runs
the threshold algorithm against it.  We compare the shared round's
operator pulls against resolving each phrase's pruning independently,
and verify the allocations equal unpruned Hungarian matching.
"""

from __future__ import annotations

import random

import pytest

from repro.core.advertiser import Advertiser
from repro.core.auction import AuctionSpec
from repro.core.ctr import MatrixCTRModel
from repro.core.winner_determination import determine_winners_nonseparable
from repro.metrics.tables import ExperimentTable
from repro.sharedsort.nonseparable import SharedNonSeparableRound

K = 3
NUM_ADVERTISERS = 48


def build_round(overlap: float, seed: int):
    rng = random.Random(seed)
    shared_count = int(NUM_ADVERTISERS * overlap)
    shared_block = list(range(shared_count))
    phrases = {}
    next_id = shared_count
    for index in range(3):
        own = list(range(next_id, next_id + NUM_ADVERTISERS - shared_count))
        next_id += NUM_ADVERTISERS - shared_count
        phrases[f"p{index}"] = shared_block + own
    models = {
        phrase: MatrixCTRModel(
            {
                i: [round(rng.uniform(0.01, 0.4), 3) for _ in range(K)]
                for i in ads
            }
        )
        for phrase, ads in phrases.items()
    }
    bids = {
        i: round(rng.uniform(0.1, 3.0), 2)
        for ads in phrases.values()
        for i in ads
    }
    return models, bids


@pytest.mark.experiment("SharedNonSeparable")
def test_shared_nonseparable_round(benchmark):
    table = ExperimentTable(
        "Section V with shared pruning (3 phrases x 48 advertisers, k=3)",
        [
            "overlap",
            "TA sorted accesses",
            "operator pulls",
            "pruned sizes",
            "exact",
        ],
    )
    for overlap in (0.0, 0.5, 1.0):
        models, bids = build_round(overlap, seed=int(overlap * 10) + 1)
        solver = SharedNonSeparableRound(models)
        result = solver.resolve(bids)
        exact = True
        for phrase, model in models.items():
            ads = sorted(model.rows)
            spec = AuctionSpec(
                phrase,
                [Advertiser(i, bid=bids[i]) for i in ads],
                model,
            )
            reference = determine_winners_nonseparable(spec, prune=False)
            if (
                abs(
                    result.allocations[phrase].expected_value
                    - reference.expected_value
                )
                > 1e-9
            ):
                exact = False
        table.add(
            overlap,
            result.sorted_accesses,
            result.operator_pulls,
            "/".join(str(result.pruned_sizes[p]) for p in sorted(models)),
            exact,
        )
        assert exact
        for size in result.pruned_sizes.values():
            assert size <= K * K
    table.show()

    models, bids = build_round(0.5, seed=6)
    solver = SharedNonSeparableRound(models)
    benchmark(lambda: solver.resolve(bids))
