"""E11 -- cross-round incremental execution vs from-scratch rounds.

The tentpole claim of the incremental layer: between consecutive rounds
only a small dirty set of advertisers changes score, so keeping
materialized top-k nodes alive and recomputing only the invalidated
cone cuts the cumulative materialization work hard -- on the Fig. 4 and
shoe-store workloads with their default rates, cached runs must stay at
or below 60% of the uncached node count over 50 rounds, while every
answer stays bit-identical.  The per-seed guard is absolute: cached
work can *never* exceed uncached work, on any seed, because the
recomputed cone is always a subset of the needed cone.
"""

from __future__ import annotations

import random

import pytest

from repro.instrument import MetricsCollector, names
from repro.metrics.tables import ExperimentTable
from repro.plans.executor import CrossRoundPlanExecutor, PlanExecutor
from repro.plans.greedy_planner import greedy_shared_plan
from repro.workloads.fig4 import fig4_instance
from repro.workloads.scenarios import shoe_store_instance

ROUNDS = 50
DIRTY_FRACTION = 0.05
RATIO_CEILING = 0.60
SEEDS = range(5)


def _paired_run(instance, k, seed, rounds=ROUNDS):
    """Drive cached and uncached executors through identical rounds.

    Each round perturbs ~5% of advertiser scores (at least one) and
    samples occurring queries by their search rates; both executors see
    the exact same scores and occurring lists, so any divergence is the
    cache's fault.

    Returns:
        ``(cached_nodes, uncached_nodes, reused)`` cumulative counters.
    """
    plan = greedy_shared_plan(
        instance,
        pair_strategy="cover" if len(instance.variables) > 64 else "full",
    )
    rng = random.Random(seed)
    variables = sorted(instance.variables, key=repr)
    scores = {v: rng.uniform(0.1, 100.0) for v in variables}
    dirty_count = max(1, int(len(variables) * DIRTY_FRACTION))

    cached_collector = MetricsCollector()
    uncached_collector = MetricsCollector()
    cached = CrossRoundPlanExecutor(plan, k, cached_collector)
    uncached = PlanExecutor(plan, k, uncached_collector)

    for round_index in range(rounds):
        dirty = set()
        if round_index:
            for v in rng.sample(variables, dirty_count):
                scores[v] = rng.uniform(0.1, 100.0)
                dirty.add(v)
        occurring = [
            q.name
            for q in instance.queries
            if rng.random() < q.search_rate
        ]
        a = cached.run_round(dict(scores), occurring, dirty)
        b = uncached.run_round(dict(scores), occurring)
        assert a.answers == b.answers, (
            f"cached answers diverged in round {round_index} (seed {seed})"
        )
        assert a.nodes_materialized <= b.nodes_materialized

    return (
        cached_collector.counter(names.PLAN_NODES),
        uncached_collector.counter(names.PLAN_NODES),
        cached_collector.counter(names.PLAN_NODES_REUSED),
    )


@pytest.mark.experiment("ExecCache")
def test_fig4_and_shoes_cached_work_ratio(benchmark):
    table = ExperimentTable(
        f"Cross-round cache, {ROUNDS} rounds, "
        f"{DIRTY_FRACTION:.0%} dirty per round",
        ["workload", "seed", "cached nodes", "uncached nodes", "ratio",
         "reused"],
    )
    workloads = {
        "fig4 sr=0.5": (fig4_instance(0.5), 3),
        "fig4 sr=0.9": (fig4_instance(0.9), 3),
        "shoes": (shoe_store_instance()[0], 5),
    }
    ratios = {}
    for label, (instance, k) in workloads.items():
        for seed in SEEDS:
            cached_nodes, uncached_nodes, reused = _paired_run(
                instance, k, seed
            )
            ratio = cached_nodes / uncached_nodes if uncached_nodes else 0.0
            table.add(label, seed, cached_nodes, uncached_nodes, ratio, reused)
            # Absolute per-seed guard: caching can never cost extra work.
            assert cached_nodes <= uncached_nodes, (label, seed)
            ratios.setdefault(label, []).append(ratio)
    table.show()
    # The acceptance ceiling on the paper workloads with default rates.
    for label, series in ratios.items():
        worst = max(series)
        assert worst <= RATIO_CEILING, (
            f"{label}: cached/uncached ratio {worst:.2f} exceeds "
            f"{RATIO_CEILING:.0%}"
        )

    instance, k = workloads["fig4 sr=0.9"]
    plan = greedy_shared_plan(instance)
    rng = random.Random(0)
    variables = sorted(instance.variables)
    scores = {v: rng.uniform(0.1, 100.0) for v in variables}
    executor = CrossRoundPlanExecutor(plan, k)
    executor.run_round(dict(scores))

    def cached_round():
        v = variables[rng.randrange(len(variables))]
        scores[v] = rng.uniform(0.1, 100.0)
        executor.run_round(dict(scores), dirty={v})

    benchmark(cached_round)


@pytest.mark.experiment("ExecCache")
def test_uncached_round_baseline(benchmark):
    instance = fig4_instance(0.9)
    plan = greedy_shared_plan(instance)
    rng = random.Random(0)
    variables = sorted(instance.variables)
    scores = {v: rng.uniform(0.1, 100.0) for v in variables}
    executor = PlanExecutor(plan, 3)

    def uncached_round():
        v = variables[rng.randrange(len(variables))]
        scores[v] = rng.uniform(0.1, 100.0)
        executor.run_round(dict(scores))

    benchmark(uncached_round)
