"""E15 -- the three engine modes head to head.

``shared`` (Section II plans), ``shared-sort`` (Section III merge-sort
network + threshold algorithm), and ``unshared`` (independent scans)
resolve the same generated market.  With phrase-independent CTR factors
all three must produce identical outcomes; the work profiles differ.
"""

from __future__ import annotations

import pytest

from repro.engine import SharedAuctionEngine
from repro.metrics.tables import ExperimentTable
from repro.workloads.generator import MarketConfig, generate_market

ROUNDS = 25
MODES = ("shared", "shared-sort", "unshared")


def build_engine(market, mode: str) -> SharedAuctionEngine:
    return SharedAuctionEngine(
        market.advertisers,
        slot_factors=[0.3, 0.2],
        search_rates=market.search_rates,
        mode=mode,
        throttle=True,
        seed=31,
    )


@pytest.mark.experiment("EngineModes")
def test_three_modes_agree_and_differ_in_work(benchmark):
    market = generate_market(
        MarketConfig(
            num_categories=3,
            phrases_per_category=3,
            specialists_per_category=12,
            generalists=20,
            generalist_categories=2,
            seed=4,
        )
    )
    table = ExperimentTable(
        f"Engine modes over {ROUNDS} rounds (identical outcomes required)",
        ["mode", "scans", "merges", "revenue ($)", "displays"],
    )
    reports = {}
    for mode in MODES:
        engine = build_engine(market, mode)
        reports[mode] = engine.run(ROUNDS)
        table.add(
            mode,
            reports[mode].scans,
            reports[mode].merges,
            reports[mode].revenue_cents / 100,
            reports[mode].displays,
        )
    table.show()

    # Exactness: all three modes deliver identical auction outcomes.
    assert (
        reports["shared"].revenue_cents
        == reports["shared-sort"].revenue_cents
        == reports["unshared"].revenue_cents
    )
    assert (
        reports["shared"].displays
        == reports["shared-sort"].displays
        == reports["unshared"].displays
    )
    # Work: the Section II plan scans fewer advertisers than independent
    # resolution; the Section III pipeline touches fewer entries still
    # through early termination (sorted accesses).
    assert reports["shared"].scans < reports["unshared"].scans
    assert reports["shared-sort"].scans < reports["unshared"].scans

    engine = build_engine(market, "shared-sort")
    benchmark(lambda: engine.run_round())
