"""Shared configuration for the benchmark harness.

Each module regenerates one of the paper's figures/tables (see the
experiment index in DESIGN.md) and prints its series as a plain-text
table at the end of the module, so ``pytest benchmarks/ --benchmark-only
| tee bench_output.txt`` doubles as the reproduction record.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks live outside the tests/ tree; make sure a bare
    # ``pytest benchmarks/`` run does not silently skip on missing marks.
    config.addinivalue_line("markers", "experiment(id): paper experiment id")
