"""E13 -- the shared-sort hot-path rebuild (ISSUE 5 acceptance gates).

Three claims, three gates, all on the scaled nonseparable workload
(per-phrase CTR factors force Section III; small paper-scale points are
reported but not gated):

1. **Builder**: the lazy pair-heap completion performs at least 5x
   fewer expected-savings evaluations than the naive full rescan and is
   at least 2x faster in wall-clock, while building the byte-identical
   plan (serialized-form equality asserted here, not just counters).
2. **Cross-round reuse**: over a 20-round run where ~5% of bids change
   per round, :class:`CrossRoundSortCache` cuts cumulative operator
   pulls by at least 40% against rebuilding the network every round,
   with every phrase stream item-for-item identical.
3. **Batched pulls**: the batched threshold path issues at most the
   operator pulls of the item-at-a-time register model (strict counter
   parity is asserted; the batch/item call amortization is recorded).

Counter gates are deterministic; the wall-clock floor has large
headroom (measured ~50x) against timer noise.  Results land in
``BENCH_sharedsort.json`` at the repo root as the reproduction record.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.instrument import MetricsCollector, names as metric_names
from repro.sharedsort.cache import CrossRoundSortCache
from repro.sharedsort.plan import SortBuilderStats, build_shared_sort_plan
from repro.sharedsort.serialize import serialize_plan
from repro.sharedsort.threshold import threshold_top_k
from repro.metrics.tables import ExperimentTable

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sharedsort.json"
SAVINGS_REDUCTION_FLOOR = 5.0
WALL_SPEEDUP_FLOOR = 2.0
PULL_REDUCTION_FLOOR = 0.40
ROUNDS = 20
DIRTY_FRACTION = 0.05
TOP_K = 4


def _nonseparable_workload(seed, num_phrases, num_ads):
    """A shared-sort instance with per-phrase CTR factors.

    Overlapping advertiser interests make merge sharing worthwhile;
    distinct per-phrase factors are what force the Section III pipeline
    (bids shared, CTR orders per phrase) instead of plain aggregation.
    """
    rng = random.Random(seed)
    phrases = {}
    for p in range(num_phrases):
        # Phrase interest sets span up to a quarter of the market: wide
        # enough that merge sharing pays, narrow enough that one dirty
        # advertiser does not sit under every phrase's ancestor cone.
        size = rng.randint(6, max(6, num_ads // 4))
        phrases[f"q{p:02d}"] = sorted(rng.sample(range(num_ads), size))
    rates = {
        phrase: rng.choice([0.9, 0.7, 0.5, 0.3]) for phrase in phrases
    }
    factors = {
        phrase: {i: round(rng.uniform(0.05, 1.5), 3) for i in ids}
        for phrase, ids in phrases.items()
    }
    bids = {i: round(rng.uniform(0.1, 50.0), 2) for i in range(num_ads)}
    return phrases, rates, factors, bids, rng


def _workloads():
    """(label, num_phrases, num_ads, scaled) benchmark points."""
    return [
        ("paper-scale 6x14", 6, 14, False),
        ("scaled 24x96", 24, 96, True),
    ]


def _build_both(phrases, rates):
    results = {}
    for planner in ("naive", "lazy"):
        stats = SortBuilderStats()
        started = time.perf_counter()
        plan = build_shared_sort_plan(
            phrases, rates, planner=planner, stats=stats
        )
        elapsed = time.perf_counter() - started
        results[planner] = (stats, elapsed, plan)
    return results


def _run_rounds(plan, phrases, rates, factors, bids, rng, use_cache):
    """Drive ROUNDS rounds of per-phrase TA; returns (pulls, collector).

    Each round ~5% of bids change and each phrase occurs by its rate;
    the bid/occurrence schedule is derived from a fresh ``Random`` seeded
    identically for the cached and uncached runs, so both see the exact
    same rounds.
    """
    collector = MetricsCollector()
    cache = CrossRoundSortCache(plan, collector) if use_cache else None
    ctr_orders = {
        phrase: sorted(ids, key=lambda i: (-factors[phrase][i], i))
        for phrase, ids in phrases.items()
    }
    bids = dict(bids)
    dirty_count = max(1, int(len(bids) * DIRTY_FRACTION))
    total_pulls = 0
    answers = []
    for round_index in range(ROUNDS):
        if round_index:
            for advertiser in rng.sample(sorted(bids), dirty_count):
                bids[advertiser] = round(rng.uniform(0.1, 50.0), 2)
        occurring = [
            phrase for phrase in sorted(phrases) if rng.random() < rates[phrase]
        ]
        round_bids = {
            i: bids[i] for phrase in occurring for i in phrases[phrase]
        }
        if cache is not None:
            live = cache.instantiate(round_bids, collector)
        else:
            live = plan.instantiate(round_bids, collector)
        for phrase in occurring:
            result = threshold_top_k(
                TOP_K,
                live.stream_for_phrase(phrase),
                ctr_orders[phrase],
                round_bids,
                factors[phrase],
                collector,
            )
            answers.append((round_index, phrase, result.ranking.entries))
        total_pulls += live.round_pulls()
    return total_pulls, answers, collector


@pytest.mark.experiment("SharedSortRebuild")
def test_builder_cache_and_batching_gates(benchmark):
    table = ExperimentTable(
        "Shared-sort rebuild: builder work, cross-round pulls",
        ["workload", "evals naive", "evals lazy", "reduction",
         "wall speedup", "pulls fresh", "pulls cached", "pull cut"],
    )
    record = {}
    for label, num_phrases, num_ads, scaled in _workloads():
        phrases, rates, factors, bids, _ = _nonseparable_workload(
            3, num_phrases, num_ads
        )
        built = _build_both(phrases, rates)
        naive_stats, naive_s, naive_plan = built["naive"]
        lazy_stats, lazy_s, lazy_plan = built["lazy"]
        assert serialize_plan(naive_plan) == serialize_plan(lazy_plan), (
            f"{label}: plans diverged"
        )
        reduction = naive_stats.savings_evaluated / max(
            1, lazy_stats.savings_evaluated
        )
        speedup = naive_s / lazy_s if lazy_s else float("inf")

        # Identical round schedules: same seed, same draw sequence.
        fresh_pulls, fresh_answers, _ = _run_rounds(
            lazy_plan, phrases, rates, factors, bids,
            random.Random(11), use_cache=False,
        )
        cached_pulls, cached_answers, cached_collector = _run_rounds(
            lazy_plan, phrases, rates, factors, bids,
            random.Random(11), use_cache=True,
        )
        assert cached_answers == fresh_answers, f"{label}: answers diverged"
        assert cached_pulls <= fresh_pulls
        pull_cut = 1.0 - cached_pulls / fresh_pulls if fresh_pulls else 0.0

        table.add(
            label,
            naive_stats.savings_evaluated,
            lazy_stats.savings_evaluated,
            reduction,
            speedup,
            fresh_pulls,
            cached_pulls,
            pull_cut,
        )
        record[label] = {
            "scaled_acceptance_point": scaled,
            "builder": {
                "savings_evaluated": {
                    "naive": naive_stats.savings_evaluated,
                    "lazy": lazy_stats.savings_evaluated,
                    "reduction": round(reduction, 3),
                },
                "pairs_enumerated": {
                    "naive": naive_stats.pairs_enumerated,
                    "lazy": lazy_stats.pairs_enumerated,
                },
                "lazy_memo_hits": lazy_stats.savings_memo_hits,
                "lazy_stale_rescored": lazy_stats.stale_rescored,
                "wall_seconds": {
                    "naive": round(naive_s, 4),
                    "lazy": round(lazy_s, 4),
                    "speedup": round(speedup, 3),
                },
                "plans_identical": True,
            },
            "cross_round": {
                "rounds": ROUNDS,
                "dirty_fraction": DIRTY_FRACTION,
                "operator_pulls": {
                    "fresh": fresh_pulls,
                    "cached": cached_pulls,
                    "reduction": round(pull_cut, 3),
                },
                "streams_reused": cached_collector.counter(
                    metric_names.SORT_STREAMS_REUSED
                ),
                "streams_invalidated": cached_collector.counter(
                    metric_names.SORT_STREAMS_INVALIDATED
                ),
                "answers_identical": True,
            },
        }
        if scaled:
            assert reduction >= SAVINGS_REDUCTION_FLOOR, (
                f"{label}: savings evaluations reduced only "
                f"{reduction:.2f}x (floor {SAVINGS_REDUCTION_FLOOR}x)"
            )
            assert speedup >= WALL_SPEEDUP_FLOOR, (
                f"{label}: builder wall-clock speedup only {speedup:.2f}x "
                f"(floor {WALL_SPEEDUP_FLOOR}x)"
            )
            assert pull_cut >= PULL_REDUCTION_FLOOR, (
                f"{label}: cross-round pull reduction only {pull_cut:.0%} "
                f"(floor {PULL_REDUCTION_FLOOR:.0%})"
            )

    # Batched pull parity + amortization on the scaled workload: the
    # batched engine's operator pulls must equal the register model's
    # (items() never prefetches past its lo), while each batched call
    # returns several items on warm caches.
    phrases, rates, factors, bids, _ = _nonseparable_workload(3, 24, 96)
    plan = build_shared_sort_plan(phrases, rates)
    ctr_orders = {
        phrase: sorted(ids, key=lambda i: (-factors[phrase][i], i))
        for phrase, ids in phrases.items()
    }
    parity = {}
    warm = {}
    for batched in (True, False):
        collector = MetricsCollector()
        live = plan.instantiate(bids, collector)
        for phrase in sorted(phrases):
            threshold_top_k(
                TOP_K,
                live.stream_for_phrase(phrase),
                ctr_orders[phrase],
                bids,
                factors[phrase],
                collector,
                batched=batched,
            )
        parity[batched] = dict(collector.snapshot())
        # Warm pass: every stream replays its cache -- the regime shared
        # operators and cross-round reuse put the engine in.
        snapshot = collector.snapshot()
        for phrase in sorted(phrases):
            threshold_top_k(
                TOP_K,
                live.stream_for_phrase(phrase),
                ctr_orders[phrase],
                bids,
                factors[phrase],
                collector,
                batched=batched,
            )
        warm[batched] = collector.delta_since(snapshot)
    pulls_batched = parity[True].get(metric_names.SORT_OPERATOR_PULLS, 0)
    pulls_item = parity[False].get(metric_names.SORT_OPERATOR_PULLS, 0)
    assert pulls_batched <= pulls_item, (
        f"batched pulls {pulls_batched} exceed item-at-a-time {pulls_item}"
    )
    assert warm[True].get(metric_names.SORT_OPERATOR_PULLS, 0) == 0
    batch_calls = parity[True].get(metric_names.SORT_BATCH_PULLS, 0)
    batch_items = parity[True].get(metric_names.SORT_BATCHED_ITEMS, 0)
    warm_calls = warm[True].get(metric_names.SORT_BATCH_PULLS, 0)
    warm_items = warm[True].get(metric_names.SORT_BATCHED_ITEMS, 0)
    warm_item_reads = warm[False].get(metric_names.SORT_CACHE_REPLAYS, 0)
    record["batched_pull_parity"] = {
        "operator_pulls": {"batched": pulls_batched, "item": pulls_item},
        "cold_pass": {
            "batch_calls": batch_calls,
            "batched_items": batch_items,
            "items_per_call": round(batch_items / max(1, batch_calls), 3),
        },
        "warm_replay_pass": {
            "batch_calls": warm_calls,
            "batched_items": warm_items,
            "items_per_call": round(warm_items / max(1, warm_calls), 3),
            "item_engine_stream_reads": warm_item_reads,
        },
    }

    table.show()
    record["acceptance"] = {
        "savings_reduction_floor": SAVINGS_REDUCTION_FLOOR,
        "wall_speedup_floor": WALL_SPEEDUP_FLOOR,
        "pull_reduction_floor": PULL_REDUCTION_FLOOR,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    # Timed kernel: one incremental round (5% dirty) on the scaled
    # workload through the cross-round cache.
    rng = random.Random(0)
    cache = CrossRoundSortCache(plan)
    live_bids = dict(bids)
    cache.instantiate(live_bids)

    def cached_round():
        for advertiser in rng.sample(sorted(live_bids), 5):
            live_bids[advertiser] = round(rng.uniform(0.1, 50.0), 2)
        live = cache.instantiate(live_bids)
        for phrase in sorted(phrases):
            threshold_top_k(
                TOP_K,
                live.stream_for_phrase(phrase),
                ctr_orders[phrase],
                live_bids,
                factors[phrase],
            )

    benchmark(cached_round)


@pytest.mark.experiment("SharedSortRebuild")
def test_lazy_builder_kernel(benchmark):
    phrases, rates, _, _, _ = _nonseparable_workload(3, 24, 96)
    benchmark(lambda: build_shared_sort_plan(phrases, rates, planner="lazy"))
