"""E8 -- greedy heuristic quality vs the exhaustive optimum.

The paper proves optimal planning is inapproximable in general but
argues the two-stage greedy heuristic is good in practice (it runs
greedy set cover, a (1 + ln n)-approximation, on the worst-case
instances).  On random small instances we compare greedy plan sizes to
the exhaustive optimum, and report the fragment-only ablation.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.metrics.tables import ExperimentTable
from repro.plans.baselines import fragment_only_plan, no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.greedy_planner import greedy_shared_plan
from repro.plans.instance import AggregateQuery, SharedAggregationInstance
from repro.plans.optimal import optimal_plan


def random_instance(seed: int) -> SharedAggregationInstance:
    rng = random.Random(seed)
    universe = [f"x{i}" for i in range(rng.randrange(4, 7))]
    queries = []
    used = set()
    for index in range(rng.randrange(2, 4)):
        size = rng.randrange(2, len(universe) + 1)
        members = frozenset(rng.sample(universe, size))
        if members in used:
            continue
        used.add(members)
        queries.append(
            AggregateQuery(f"q{index}", members, rng.choice([0.25, 0.5, 1.0]))
        )
    if not queries:
        queries.append(AggregateQuery("q0", universe[:2], 1.0))
    return SharedAggregationInstance(queries)


@pytest.mark.experiment("HeuristicQuality")
def test_greedy_vs_optimal(benchmark):
    table = ExperimentTable(
        "Greedy heuristic vs exhaustive optimum (random small instances)",
        [
            "seed",
            "queries",
            "vars",
            "optimal size",
            "greedy size",
            "fragment-only size",
            "no-sharing size",
        ],
    )
    ratios = []
    for seed in range(12):
        instance = random_instance(seed)
        best = optimal_plan(instance)
        greedy = greedy_shared_plan(instance)
        fragments = fragment_only_plan(instance)
        unshared = no_sharing_plan(instance)
        table.add(
            seed,
            len(instance.queries),
            len(instance.variables),
            best.total_cost,
            greedy.total_cost,
            fragments.total_cost,
            unshared.total_cost,
        )
        assert best.total_cost <= greedy.total_cost
        assert greedy.total_cost <= unshared.total_cost
        extra_greedy = greedy.extra_cost
        extra_best = best.extra_cost
        # Greedy extra cost within the set-cover log factor of optimal.
        n = len(instance.variables)
        bound = (extra_best + 1) * (1 + math.log(max(2, n))) + 1
        assert extra_greedy <= bound
        ratios.append(
            greedy.total_cost / best.total_cost if best.total_cost else 1.0
        )
    table.show()
    print(f"\nmean greedy/optimal size ratio: {sum(ratios) / len(ratios):.3f}")
    assert sum(ratios) / len(ratios) < 1.35

    instance = random_instance(3)
    benchmark(lambda: greedy_shared_plan(instance))


@pytest.mark.experiment("HeuristicQuality")
def test_ablation_fragments_vs_full_heuristic(benchmark):
    """How much of the win comes from fragments alone (stage 1) versus
    the greedy cross-fragment completion (stage 2)?"""
    table = ExperimentTable(
        "Ablation: fragments-only vs full heuristic (expected cost)",
        ["seed", "no sharing", "fragments only", "full heuristic"],
    )
    for seed in range(8):
        instance = random_instance(100 + seed)
        unshared = expected_plan_cost(no_sharing_plan(instance))
        fragments = expected_plan_cost(fragment_only_plan(instance))
        full = expected_plan_cost(greedy_shared_plan(instance))
        table.add(seed, unshared, fragments, full)
        assert full <= fragments + 1e-9 <= unshared + 1e-9
    table.show()

    instance = random_instance(104)
    benchmark(lambda: fragment_only_plan(instance))
