"""E14 -- concentration-bound ablation: Hoeffding vs Bernstein vs both.

The paper uses Hoeffding's inequality for the unexpanded remainder of
``S_l``.  Bernstein's inequality uses the variance ``Σ π² ctr(1-ctr)``
and is tighter when click probabilities are small -- precisely the
regime of decayed outstanding ads.  We measure interval widths at depth
0 and the expansions a comparison workload needs under each method.
"""

from __future__ import annotations

import random

import pytest

from repro.budgets.comparison import BoundedBid, compare_throttled_bids
from repro.budgets.hoeffding import throttled_bid_bounds
from repro.budgets.throttle import ThrottleProblem
from repro.metrics.tables import ExperimentTable

METHODS = ("hoeffding", "bernstein", "combined")


def problems(ctr_level: float, seed: int, count: int = 40):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        ads = [
            (rng.randrange(5, 40), min(0.95, max(0.01, rng.gauss(ctr_level, 0.03))))
            for _ in range(8)
        ]
        out.append(
            ThrottleProblem(
                bid_cents=rng.randrange(20, 80),
                budget_cents=rng.randrange(60, 260),
                num_auctions=2,
                outstanding=ads,
            )
        )
    return out


@pytest.mark.experiment("BoundMethods")
def test_bound_width_by_method(benchmark):
    table = ExperimentTable(
        "Depth-0 interval width of b-hat by bound method (mean over 40 problems)",
        ["click level", *METHODS],
    )
    for ctr_level in (0.05, 0.2, 0.5):
        widths = {}
        for method in METHODS:
            total = 0.0
            for problem in problems(ctr_level, seed=17):
                total += throttled_bid_bounds(problem, 0, method=method).width
            widths[method] = total / 40
        table.add(ctr_level, widths["hoeffding"], widths["bernstein"], widths["combined"])
        # Combined is the intersection: never looser than either.
        assert widths["combined"] <= widths["hoeffding"] + 1e-9
        assert widths["combined"] <= widths["bernstein"] + 1e-9
    table.show()
    print(
        "\nShape: Bernstein tightens markedly at low click probabilities"
        "\n(low-variance debt), while Hoeffding can win near ctr = 0.5;"
        "\nintersecting both dominates either alone."
    )

    sample = problems(0.05, seed=17)[0]
    benchmark(lambda: throttled_bid_bounds(sample, 0, method="combined"))


@pytest.mark.experiment("BoundMethods")
def test_comparison_work_by_method(benchmark):
    """Tighter depth-0 bounds should not hurt comparison workloads; we
    count the refinements a close-comparison batch needs when the
    BoundedBid layer runs at each method's depth-0 start."""
    rng = random.Random(5)
    pairs = []
    for _ in range(30):
        budget = rng.randrange(60, 200)
        bid = rng.randrange(25, 60)
        make = lambda: [
            (rng.randrange(4, 35), rng.uniform(0.02, 0.25)) for _ in range(6)
        ]
        pairs.append(
            (
                ThrottleProblem(bid, budget, 2, make()),
                ThrottleProblem(bid, budget, 2, make()),
            )
        )

    def run_batch():
        total = 0
        for a_problem, b_problem in pairs:
            a = BoundedBid(1, a_problem)
            b = BoundedBid(2, b_problem)
            compare_throttled_bids(a, b)
            total += a.refinements + b.refinements
        return total

    total = benchmark(run_batch)
    table = ExperimentTable(
        "Refinements needed for 30 close comparisons (rare-click regime)",
        ["total refinements", "full-expansion work"],
    )
    table.add(total, 30 * 2 * 6)
    table.show()
    assert total < 30 * 2 * 6
