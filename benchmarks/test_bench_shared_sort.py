"""E7 -- shared sorting: expected full-sort cost and live pulls vs overlap.

Sweeps the fraction of advertisers shared by all phrases.  Higher
overlap means more merge operators satisfy the sharing constraints
(common phrases, disjoint equal-size runs), pushing the shared plan's
expected full-sort cost below independent per-phrase sorting; at zero
overlap the two coincide.  Also measures live operator pulls when the
threshold algorithm only needs the top of each stream.
"""

from __future__ import annotations

import random

import pytest

from repro.metrics.tables import ExperimentTable
from repro.sharedsort import (
    build_shared_sort_plan,
    independent_sort_cost,
    threshold_top_k,
)

NUM_PHRASES = 3
ADS_PER_PHRASE = 32


def phrase_map(overlap_fraction: float):
    shared_count = int(ADS_PER_PHRASE * overlap_fraction)
    shared_block = list(range(shared_count))
    phrases = {}
    next_id = shared_count
    for index in range(NUM_PHRASES):
        own = list(range(next_id, next_id + ADS_PER_PHRASE - shared_count))
        next_id += ADS_PER_PHRASE - shared_count
        phrases[f"p{index}"] = shared_block + own
    return phrases


@pytest.mark.experiment("SharedSort")
def test_shared_sort_cost_vs_overlap(benchmark):
    table = ExperimentTable(
        "Shared merge-sort: expected full-sort cost vs overlap "
        f"({NUM_PHRASES} phrases x {ADS_PER_PHRASE} advertisers, sr=0.9)",
        ["overlap", "independent", "shared plan", "saving"],
    )
    previous_saving = -1.0
    for overlap in (0.0, 0.25, 0.5, 0.75, 1.0):
        phrases = phrase_map(overlap)
        plan = build_shared_sort_plan(phrases, 0.9)
        shared_cost = plan.expected_cost()
        independent = independent_sort_cost(
            {p: len(ads) for p, ads in phrases.items()},
            {p: 0.9 for p in phrases},
        )
        saving = 1 - shared_cost / independent
        table.add(overlap, independent, shared_cost, f"{saving:.1%}")
        assert shared_cost <= independent + 1e-9
        if overlap >= 0.5:
            # Savings keep growing once overlap dominates.
            assert saving >= previous_saving - 1e-9
        previous_saving = saving
    table.show()

    phrases = phrase_map(0.5)
    benchmark(lambda: build_shared_sort_plan(phrases, 0.9))


@pytest.mark.experiment("SharedSort")
def test_threshold_algorithm_pull_counts(benchmark):
    """Live pulls with TA on top: early termination keeps operator work
    far below the full-sort worst case the cost model charges."""
    rng = random.Random(17)
    phrases = phrase_map(0.5)
    bids = {
        advertiser: round(rng.uniform(0.1, 9.9), 2)
        for ads in phrases.values()
        for advertiser in ads
    }
    factors = {
        phrase: {a: round(rng.uniform(0.3, 1.7), 3) for a in ads}
        for phrase, ads in phrases.items()
    }
    plan = build_shared_sort_plan(phrases, 1.0)

    def run_all():
        live = plan.instantiate(bids)
        for phrase, ads in phrases.items():
            ctr_order = sorted(
                ads, key=lambda a: (-factors[phrase][a], a)
            )
            result = threshold_top_k(
                5,
                live.stream_for_phrase(phrase),
                ctr_order,
                bids,
                factors[phrase],
            )
            expected = sorted(
                ads, key=lambda a: (-bids[a] * factors[phrase][a], a)
            )[:5]
            assert list(result.ranking.advertiser_ids()) == expected
        return live

    live = run_all()
    worst_case = plan.expected_cost()  # sr=1: the full-sort cost exactly
    table = ExperimentTable(
        "Threshold algorithm over the shared plan (k=5, overlap 0.5)",
        ["operator pulls (live)", "full-sort worst case", "fraction"],
    )
    table.add(
        live.total_pulls(),
        worst_case,
        f"{live.total_pulls() / worst_case:.1%}",
    )
    table.show()
    assert live.total_pulls() < worst_case

    benchmark(run_all)
