"""E18 -- the serving engine: sustained QPS, exact tail latency, and
steady-state cache amortization.

The serving loop's performance claim has two halves.  *Latency*: a
query-at-a-time tick on the Fig. 4-derived market resolves in well under
a millisecond, measured as exact nearest-rank p50/p99 over a 600-query
session (no sketches -- the recorder keeps every sample).  *Work*: with
the cross-round caches acting as steady-state serving caches, each query
re-materializes only the dirty cone left by asynchronous click
settlements, so a cached session does measurably less winner-
determination work per query than a cache-off session on the identical
trace -- `plan.nodes` for the shared executor, operator pulls + leaf
reads for the shared-sort network.

Latency sessions run with the null collector (metric bookkeeping would
tax exactly the path being timed); work sessions re-run the identical
trace with a collector, which is sound because outcomes and work
counters are deterministic for a fixed configuration.  Results land in
``BENCH_serving.json`` at the repo root.  The work gates are counter
arithmetic and machine-independent; the only wall gate is a generous
p50 ceiling to catch pathological regressions without CI noise.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine import SharedAuctionEngine
from repro.instrument import MetricsCollector, names
from repro.metrics.tables import ExperimentTable
from repro.serving import ServingEngine, TrafficGenerator
from repro.workloads.fig4 import fig4_market

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
QUERIES = 600
ARRIVAL_RATE_QPS = 200.0
ZIPF_EXPONENT = 1.0
MARKET_SEED = 4
ENGINE_SEED = 17
P50_CEILING_SECONDS = 0.050  # measured ~0.3 ms; 50 ms means pathology
CACHED_WORK_MAX_RATIO = 0.9  # "measurably less", not merely "not more"


def make_loop(collector=None, **engine_kwargs):
    # Budgets are loose enough that the Section IV exact-throttle DP
    # stays on its trivially-unthrottled fast path (tight budgets make
    # every tick pay O(outstanding x budget) per advertiser -- a real
    # cost, but a property of the throttle problem, not of the serving
    # loop this experiment measures) while clicks still move the books,
    # so BudgetChanged events keep the caches' dirty cones honest.
    advertisers, search_rates = fig4_market(
        seed=MARKET_SEED, median_budget_cents=20_000
    )
    engine = SharedAuctionEngine(
        advertisers,
        slot_factors=[0.3, 0.2, 0.1],
        search_rates=search_rates,
        seed=ENGINE_SEED,
        collector=collector,
        **engine_kwargs,
    )
    traffic = TrafficGenerator.from_search_rates(
        search_rates,
        rate_qps=ARRIVAL_RATE_QPS,
        zipf_exponent=ZIPF_EXPONENT,
        seed=ENGINE_SEED,
    )
    return ServingEngine(engine, traffic, keep_history=False)


def latency_session(**engine_kwargs):
    """Timed pass: null collector, nothing taxing the serve path."""
    report = make_loop(**engine_kwargs).run(QUERIES)
    return report.latency


def work_session(**engine_kwargs):
    """Accounting pass: identical trace, collector enabled."""
    collector = MetricsCollector()
    report = make_loop(collector=collector, **engine_kwargs).run(QUERIES)
    return report.counters, report


CONFIGS = [
    ("shared uncached", {"mode": "shared"}),
    (
        "shared +exec-cache",
        {"mode": "shared", "exec_cache": True, "cache_verify": False},
    ),
    ("shared-sort uncached", {"mode": "shared-sort"}),
    (
        "shared-sort +sort-cache",
        {"mode": "shared-sort", "sort_cache": True, "cache_verify": False},
    ),
]


def plan_work(counters):
    return counters.get(names.PLAN_NODES, 0)


def sort_work(counters):
    return counters.get(names.SORT_OPERATOR_PULLS, 0) + counters.get(
        names.SORT_LEAF_READS, 0
    )


@pytest.mark.experiment("Serving")
def test_serving_qps_latency_and_cache_amortization(benchmark):
    table = ExperimentTable(
        f"Serving fig4 market, {QUERIES} queries, Zipf {ZIPF_EXPONENT}",
        ["config", "qps", "p50 (ms)", "p99 (ms)", "work/query"],
    )
    record = {
        "queries": QUERIES,
        "arrival_rate_qps": ARRIVAL_RATE_QPS,
        "zipf_exponent": ZIPF_EXPONENT,
        "market_seed": MARKET_SEED,
        "engine_seed": ENGINE_SEED,
        "configs": {},
    }
    counters_by_label = {}
    for label, config in CONFIGS:
        latency = latency_session(**config)
        counters, report = work_session(**config)
        counters_by_label[label] = counters
        work = (
            plan_work(counters)
            if config["mode"] == "shared"
            else sort_work(counters)
        )
        table.add(
            label,
            round(latency.qps, 1),
            round(latency.p50_seconds * 1000.0, 4),
            round(latency.p99_seconds * 1000.0, 4),
            round(work / QUERIES, 2),
        )
        assert latency.count == QUERIES
        assert latency.p50_seconds <= P50_CEILING_SECONDS, label
        record["configs"][label] = {
            "qps": round(latency.qps, 1),
            "p50_ms": round(latency.p50_seconds * 1000.0, 4),
            "p99_ms": round(latency.p99_seconds * 1000.0, 4),
            "work_per_query": round(work / QUERIES, 3),
            "revenue_cents": report.revenue_cents,
            "clicks": report.clicks,
        }
    table.show()

    # The tentpole gate: steady-state cached serving does measurably
    # less winner-determination work per query than cache-off serving
    # on the identical trace.
    exec_cached = plan_work(counters_by_label["shared +exec-cache"])
    exec_uncached = plan_work(counters_by_label["shared uncached"])
    assert exec_cached < exec_uncached * CACHED_WORK_MAX_RATIO, (
        f"exec cache saved too little: {exec_cached} vs {exec_uncached}"
    )
    sort_cached = sort_work(counters_by_label["shared-sort +sort-cache"])
    sort_uncached = sort_work(counters_by_label["shared-sort uncached"])
    assert sort_cached < sort_uncached * CACHED_WORK_MAX_RATIO, (
        f"sort cache saved too little: {sort_cached} vs {sort_uncached}"
    )
    reused = counters_by_label["shared +exec-cache"].get(
        names.PLAN_NODES_REUSED, 0
    )
    assert reused > 0, "steady state never reused a cached node"
    record["gates"] = {
        "exec_cache_work_ratio": round(exec_cached / exec_uncached, 3),
        "sort_cache_work_ratio": round(sort_cached / sort_uncached, 3),
        "max_allowed_ratio": CACHED_WORK_MAX_RATIO,
        "plan_nodes_reused": reused,
        "sort_streams_reused": counters_by_label[
            "shared-sort +sort-cache"
        ].get(names.SORT_STREAMS_REUSED, 0),
    }

    # Identical sessions must record identical counters (the serving
    # determinism contract the test suite pins on a smaller market).
    again, _ = work_session(mode="shared", exec_cache=True, cache_verify=False)
    assert again == counters_by_label["shared +exec-cache"]

    # Merge-preserve: test_bench_columnar_serving.py owns the
    # "columnar_serving" key in the same file.
    merged = {}
    if BENCH_JSON.exists():
        merged = json.loads(BENCH_JSON.read_text())
    merged.update(record)
    BENCH_JSON.write_text(json.dumps(merged, indent=2) + "\n")

    # Timed kernel: one steady-state cached serving tick, end to end.
    loop = make_loop(mode="shared", exec_cache=True, cache_verify=False)
    loop.run(100)  # past the cold start
    arrivals = iter(loop.traffic)

    def serve_tick():
        loop.serve_one(next(arrivals))

    benchmark(serve_tick)
