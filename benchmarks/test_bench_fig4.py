"""E3 -- Figure 4: expected plan cost vs query probability.

Protocol (from the paper): 10 top-k queries over 20 advertisers, each
advertiser's membership decided by a fair coin, duplicates discarded.
We sweep the common query probability, averaging over seeds, and report
the expected per-round cost of the greedy shared plan against the
no-sharing, CSE-only, and fragment-only baselines.  The benchmark also
times one full greedy planning run.
"""

from __future__ import annotations

import pytest

from repro.metrics.tables import ExperimentTable
from repro.plans.baselines import cse_plan, fragment_only_plan, no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.greedy_planner import greedy_shared_plan
from repro.workloads.fig4 import fig4_instance

PROBABILITIES = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
SEEDS = range(4)


@pytest.mark.experiment("Fig4")
def test_fig4_cost_curve(benchmark):
    table = ExperimentTable(
        "Fig. 4 -- expected plan cost vs query probability "
        "(10 queries / 20 advertisers / fair-coin membership)",
        ["sr", "no sharing", "CSE", "fragments", "greedy shared", "saving"],
    )
    curves = {}
    for probability in PROBABILITIES:
        sums = [0.0, 0.0, 0.0, 0.0]
        for seed in SEEDS:
            instance = fig4_instance(probability, seed=seed)
            sums[0] += expected_plan_cost(no_sharing_plan(instance))
            sums[1] += expected_plan_cost(cse_plan(instance))
            sums[2] += expected_plan_cost(fragment_only_plan(instance))
            sums[3] += expected_plan_cost(greedy_shared_plan(instance))
        n = len(list(SEEDS))
        means = [s / n for s in sums]
        curves[probability] = means
        table.add(
            probability,
            means[0],
            means[1],
            means[2],
            means[3],
            f"{1 - means[3] / means[0]:.1%}",
        )
    table.show()

    # Shape assertions: greedy < baselines at every probability, and the
    # absolute gap grows with sr (more certain queries -> sharing pays
    # off more often), matching the spread in the paper's figure.
    gaps = []
    for probability, means in curves.items():
        unshared, cse, fragments, greedy = means
        assert greedy < unshared
        assert greedy < cse
        assert greedy <= fragments + 1e-9
        gaps.append(unshared - greedy)
    assert gaps == sorted(gaps), "gap must grow with query probability"

    benchmark(lambda: greedy_shared_plan(fig4_instance(0.5, seed=0)))
