"""E9 -- non-separable winner determination (Section V).

Pruning each slot to its top-k advertisers keeps the matching exact
while shrinking the Hungarian instance from n x k to at most k^2 x k.
We verify exactness across sizes and time pruned vs full matching.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Advertiser, AuctionSpec, MatrixCTRModel
from repro.core.winner_determination import (
    determine_winners_nonseparable,
    prune_candidates,
)
from repro.metrics.tables import ExperimentTable

K = 3


def random_spec(num_advertisers: int, seed: int) -> AuctionSpec:
    rng = random.Random(seed)
    rows = {}
    for i in range(num_advertisers):
        base = rng.uniform(0.02, 0.3)
        tilt = rng.uniform(0.5, 2.0)
        rows[i] = [
            min(1.0, base * (tilt ** (-slot if i % 2 else slot)))
            for slot in range(K)
        ]
    advertisers = [
        Advertiser(i, bid=round(rng.uniform(0.2, 3.0), 2))
        for i in range(num_advertisers)
    ]
    return AuctionSpec("p", advertisers, MatrixCTRModel(rows))


@pytest.mark.experiment("NonSeparable")
def test_pruned_matching_exact_and_smaller(benchmark):
    table = ExperimentTable(
        f"Non-separable WD: pruned vs full Hungarian (k={K})",
        ["n", "pruned graph rows", "objective match"],
    )
    for n in (20, 50, 100, 200):
        spec = random_spec(n, seed=n)
        kept = prune_candidates(list(spec.advertisers), spec.ctr_model, K)
        pruned = determine_winners_nonseparable(spec, prune=True)
        full = determine_winners_nonseparable(spec, prune=False)
        match = abs(pruned.expected_value - full.expected_value) < 1e-9
        table.add(n, len(kept), match)
        assert match
        assert len(kept) <= K * K
    table.show()

    spec = random_spec(200, seed=200)
    benchmark(lambda: determine_winners_nonseparable(spec, prune=True))


@pytest.mark.experiment("NonSeparable")
def test_full_matching_baseline(benchmark):
    """Timing baseline: the unpruned Hungarian on the same instance, to
    show what the pruning buys."""
    spec = random_spec(200, seed=200)
    benchmark(lambda: determine_winners_nonseparable(spec, prune=False))
