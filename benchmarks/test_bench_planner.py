"""E12 -- lazy (CELF-style) greedy planner vs the naive full rescan.

The planner tentpole claim: completing a shared plan with the lazy
engine -- max-heap of candidate unions, dirty-set re-scoring, memoized
greedy covers over interned bitmasks -- produces the *byte-identical*
plan the naive per-step full rescan produces, while running a fraction
of its greedy set-cover computations.  On the scaled synthetic workload
the reduction must be at least 5x in covers computed and at least 3x in
wall-clock; both engines' counters and the timings are written to
``BENCH_planner.json`` at the repo root as the reproduction record.

Cover counts are deterministic (pure counter arithmetic, no clocks), so
the 5x floor is machine-independent; the wall-clock floor has headroom
(measured ~4x) against timer noise.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.plans.greedy_planner import GreedyPlannerStats, greedy_shared_plan
from repro.plans.serialize import dumps
from repro.metrics.tables import ExperimentTable
from repro.workloads.fig4 import fig4_instance
from repro.workloads.scenarios import shoe_store_instance

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_planner.json"
COVER_REDUCTION_FLOOR = 5.0
WALL_SPEEDUP_FLOOR = 3.0


def _workloads():
    """(label, instance, pair_strategy, scaled) benchmark points."""
    return [
        ("fig4 default", fig4_instance(0.7), "full", False),
        ("shoe store", shoe_store_instance()[0], "cover", False),
        (
            "fig4 scaled q=16 a=32",
            fig4_instance(0.7, num_queries=16, num_advertisers=32, seed=3),
            "full",
            True,
        ),
    ]


def _plan_both(instance, pair_strategy):
    """Run both engines; returns per-engine (stats, seconds, serialized)."""
    results = {}
    for planner in ("naive", "lazy"):
        stats = GreedyPlannerStats()
        started = time.perf_counter()
        plan = greedy_shared_plan(
            instance,
            pair_strategy=pair_strategy,
            stats=stats,
            planner=planner,
        )
        elapsed = time.perf_counter() - started
        results[planner] = (stats, elapsed, dumps(plan))
    return results


@pytest.mark.experiment("Planner")
def test_lazy_planner_work_and_wall_clock(benchmark):
    table = ExperimentTable(
        "Greedy planner: naive full rescan vs lazy completion",
        ["workload", "covers naive", "covers lazy", "reduction",
         "wall naive (s)", "wall lazy (s)", "speedup"],
    )
    record = {}
    for label, instance, pair_strategy, scaled in _workloads():
        results = _plan_both(instance, pair_strategy)
        naive_stats, naive_s, naive_dump = results["naive"]
        lazy_stats, lazy_s, lazy_dump = results["lazy"]
        assert naive_dump == lazy_dump, f"{label}: plans diverged"
        assert lazy_stats.pairs_scored <= naive_stats.pairs_evaluated
        assert lazy_stats.covers_computed <= naive_stats.covers_computed
        reduction = naive_stats.covers_computed / lazy_stats.covers_computed
        speedup = naive_s / lazy_s
        table.add(
            label,
            naive_stats.covers_computed,
            lazy_stats.covers_computed,
            reduction,
            naive_s,
            lazy_s,
            speedup,
        )
        record[label] = {
            "pair_strategy": pair_strategy,
            "scaled_acceptance_point": scaled,
            "covers_computed": {
                "naive": naive_stats.covers_computed,
                "lazy": lazy_stats.covers_computed,
                "reduction": round(reduction, 3),
            },
            "pairs": {
                "naive_scored": naive_stats.pairs_scored,
                "lazy_scored": lazy_stats.pairs_scored,
                "lazy_skipped": lazy_stats.pairs_skipped_lazy,
                "lazy_cover_memo_hits": lazy_stats.covers_memo_hits,
            },
            "wall_seconds": {
                "naive": round(naive_s, 4),
                "lazy": round(lazy_s, 4),
                "speedup": round(speedup, 3),
            },
            "plans_identical": True,
        }
        if scaled:
            # The acceptance floors hold on the scaled point only; the
            # small workloads are reported but not gated (their plans
            # finish in milliseconds and the rescan barely amortizes).
            assert reduction >= COVER_REDUCTION_FLOOR, (
                f"{label}: covers reduced only {reduction:.2f}x "
                f"(floor {COVER_REDUCTION_FLOOR}x)"
            )
            assert speedup >= WALL_SPEEDUP_FLOOR, (
                f"{label}: wall-clock speedup only {speedup:.2f}x "
                f"(floor {WALL_SPEEDUP_FLOOR}x)"
            )
    table.show()
    record["acceptance"] = {
        "cover_reduction_floor": COVER_REDUCTION_FLOOR,
        "wall_speedup_floor": WALL_SPEEDUP_FLOOR,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    # Timed kernel: the default-workload lazy plan, end to end.
    instance = fig4_instance(0.7)
    benchmark(lambda: greedy_shared_plan(instance, planner="lazy"))
