"""E12 -- refinement-scheduling policies (the paper's future work).

Section VI: "we would like to explore in more detail how to schedule
the refinement of these bounds to reduce the amount of work necessary
to compare two throttled bids."  We compare the built-in schedulers on
batches of close comparisons and report total expansions; every policy
must return identical orders.
"""

from __future__ import annotations

import random

import pytest

from repro.budgets.comparison import BoundedBid, compare_throttled_bids
from repro.budgets.schedulers import NAMED_SCHEDULERS
from repro.budgets.throttle import ThrottleProblem
from repro.metrics.tables import ExperimentTable

NUM_PAIRS = 60


def contender_pairs(seed: int):
    """Pairs of advertisers whose throttled bids are deliberately close."""
    rng = random.Random(seed)
    pairs = []
    for index in range(NUM_PAIRS):
        budget = rng.randrange(40, 160)
        base_bid = rng.randrange(20, 60)
        ads_a = [
            (rng.randrange(2, 45), rng.uniform(0.2, 0.8)) for _ in range(6)
        ]
        ads_b = [
            (rng.randrange(2, 45), rng.uniform(0.2, 0.8)) for _ in range(6)
        ]
        a = ThrottleProblem(base_bid, budget, 2, ads_a)
        b = ThrottleProblem(base_bid + rng.choice([-1, 0, 1]), budget, 2, ads_b)
        pairs.append((a, b))
    return pairs


@pytest.mark.experiment("Schedulers")
def test_scheduler_comparison(benchmark):
    pairs = contender_pairs(seed=23)
    table = ExperimentTable(
        f"Refinement schedulers on {NUM_PAIRS} close comparisons",
        ["scheduler", "total expansions", "max per comparison"],
    )
    orders = {}
    for name, scheduler in NAMED_SCHEDULERS.items():
        total = 0
        worst = 0
        outcome = []
        for a_problem, b_problem in pairs:
            a = BoundedBid(1, a_problem)
            b = BoundedBid(2, b_problem)
            outcome.append(compare_throttled_bids(a, b, scheduler=scheduler))
            used = a.refinements + b.refinements
            total += used
            worst = max(worst, used)
        orders[name] = outcome
        table.add(name, total, worst)
    table.show()

    # Scheduling changes work, never answers.
    baseline = orders["widest-first"]
    for name, outcome in orders.items():
        assert outcome == baseline, name

    scheduler = NAMED_SCHEDULERS["widest-first"]

    def run_widest_first():
        total = 0
        for a_problem, b_problem in pairs:
            a = BoundedBid(1, a_problem)
            b = BoundedBid(2, b_problem)
            compare_throttled_bids(a, b, scheduler=scheduler)
            total += a.refinements + b.refinements
        return total

    benchmark(run_widest_first)
