"""E13 -- sharing generalized aggregates (Section VII).

Bidding programs want sums, counts, means, and variances over sets of
bid phrases; the same shared-plan machinery serves them.  We compare
the combine-operation counts of a shared disjoint plan against per-query
recomputation for sum/count, check the semilattice aggregates reuse the
idempotent plan, and time the generic executor.
"""

from __future__ import annotations

import random

import pytest

from repro.aggregates.composite import MeanAggregate, VarianceAggregate
from repro.aggregates.executor import GenericPlanExecutor
from repro.aggregates.operators import (
    max_operator,
    min_operator,
    sum_operator,
)
from repro.metrics.tables import ExperimentTable
from repro.plans.baselines import no_sharing_plan
from repro.plans.cost import expected_plan_cost
from repro.plans.greedy_planner import greedy_shared_plan
from repro.workloads.fig4 import fig4_instance


@pytest.mark.experiment("Aggregates")
def test_generalized_aggregate_sharing(benchmark):
    instance = fig4_instance(0.8, num_queries=8, num_advertisers=16, seed=2)
    disjoint_plan = greedy_shared_plan(instance, require_disjoint=True)
    idempotent_plan = greedy_shared_plan(instance)
    unshared = no_sharing_plan(instance)

    table = ExperimentTable(
        "Section VII: plan costs for generalized aggregates "
        "(8 queries / 16 advertisers, sr=0.8)",
        ["plan", "operators", "expected cost/round"],
    )
    table.add("unshared (any operator)", unshared.total_cost, expected_plan_cost(unshared))
    table.add(
        "shared, disjoint (sum/count/mean/var)",
        disjoint_plan.total_cost,
        expected_plan_cost(disjoint_plan),
    )
    table.add(
        "shared, idempotent (top-k/max/min)",
        idempotent_plan.total_cost,
        expected_plan_cost(idempotent_plan),
    )
    table.show()

    assert expected_plan_cost(disjoint_plan) <= expected_plan_cost(unshared) + 1e-9
    assert (
        expected_plan_cost(idempotent_plan)
        <= expected_plan_cost(disjoint_plan) + 1e-9
    )

    rng = random.Random(5)
    scores = {v: round(rng.uniform(0.1, 9.9), 2) for v in instance.variables}

    # Correctness of every aggregate against direct computation.
    sums = GenericPlanExecutor(disjoint_plan, sum_operator()).run_round(scores)
    maxima = GenericPlanExecutor(idempotent_plan, max_operator()).run_round(scores)
    minima = GenericPlanExecutor(idempotent_plan, min_operator()).run_round(scores)
    means = MeanAggregate(disjoint_plan).run_round(scores)
    variances = VarianceAggregate(disjoint_plan).run_round(scores)
    for query in instance.queries:
        values = [scores[v] for v in query.variables]
        assert sums[query.name] == pytest.approx(sum(values))
        assert maxima[query.name] == pytest.approx(max(values))
        assert minima[query.name] == pytest.approx(min(values))
        assert means[query.name] == pytest.approx(sum(values) / len(values))
        mean = sum(values) / len(values)
        assert variances[query.name] == pytest.approx(
            sum((v - mean) ** 2 for v in values) / len(values), abs=1e-9
        )

    executor = GenericPlanExecutor(disjoint_plan, sum_operator())
    benchmark(lambda: executor.run_round(scores))
