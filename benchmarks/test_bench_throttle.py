"""E6 -- bound-based comparison vs exact throttled-bid computation.

The point of Section IV-B: winner determination only needs the *order*
of throttled bids, and Hoeffding bounds with largest-price-first
expansion usually decide a comparison long before all ads are expanded.
We measure expansions used by bound-driven top-k selection against the
full-expansion work exact computation would need, as the number of
outstanding ads grows.
"""

from __future__ import annotations

import random

import pytest

from repro.budgets.comparison import BoundedBid, top_k_throttled
from repro.budgets.throttle import ThrottleProblem, exact_throttled_bid
from repro.metrics.tables import ExperimentTable

NUM_ADVERTISERS = 40
K = 5


def make_bids(num_outstanding: int, seed: int):
    rng = random.Random(seed)
    bids = []
    for i in range(NUM_ADVERTISERS):
        ads = [
            (rng.randrange(2, 40), rng.uniform(0.1, 0.9))
            for _ in range(num_outstanding)
        ]
        problem = ThrottleProblem(
            bid_cents=rng.randrange(20, 120),
            budget_cents=rng.randrange(50, 400),
            num_auctions=rng.randrange(1, 5),
            outstanding=ads,
        )
        bids.append(BoundedBid(i, problem))
    return bids


@pytest.mark.experiment("Throttle")
def test_bound_refinement_beats_exact(benchmark):
    table = ExperimentTable(
        "Bound-driven top-k vs exact throttled bids "
        f"({NUM_ADVERTISERS} advertisers, k={K})",
        [
            "outstanding ads l",
            "expansions used",
            "full expansions (exact)",
            "work saved",
            "selection correct",
        ],
    )
    for num_outstanding in (2, 4, 6, 8):
        bids = make_bids(num_outstanding, seed=num_outstanding)
        winners, stats = top_k_throttled(bids, K)
        expansions = sum(b.refinements for b in bids)
        full = NUM_ADVERTISERS * num_outstanding
        expected = sorted(
            bids,
            key=lambda b: (-exact_throttled_bid(b.problem), b.advertiser_id),
        )[:K]
        correct = [w.advertiser_id for w in winners] == [
            w.advertiser_id for w in expected
        ]
        table.add(
            num_outstanding,
            expansions,
            full,
            f"{1 - expansions / full:.1%}",
            correct,
        )
        assert correct
        assert expansions < full
    table.show()

    bids = make_bids(6, seed=6)

    def select():
        fresh = [BoundedBid(b.advertiser_id, b.problem) for b in bids]
        return top_k_throttled(fresh, K)

    benchmark(select)


@pytest.mark.experiment("Throttle")
def test_exact_dp_vs_enumeration_crossover(benchmark):
    """The paper's O(min(2^l, beta)) bound: enumeration wins at small l,
    the currency-unit DP at large l.  Record both operation counts."""
    from repro.budgets.throttle import (
        throttled_bid_via_dp,
        throttled_bid_via_enumeration,
    )

    rng = random.Random(11)
    table = ExperimentTable(
        "Exact computation cost model: 2^l vs l*beta",
        ["l", "enumeration outcomes 2^l", "DP work l*beta", "cheaper"],
    )
    beta = 300
    for num_outstanding in (2, 4, 8, 12, 16):
        enum_work = 1 << num_outstanding
        dp_work = num_outstanding * beta
        table.add(
            num_outstanding,
            enum_work,
            dp_work,
            "enumeration" if enum_work <= dp_work else "DP",
        )
    table.show()

    ads = [(rng.randrange(2, 30), rng.uniform(0.1, 0.9)) for _ in range(10)]
    problem = ThrottleProblem(60, beta, 2, ads)
    assert throttled_bid_via_dp(problem) == pytest.approx(
        throttled_bid_via_enumeration(problem)
    )
    benchmark(lambda: throttled_bid_via_dp(problem))
